//! Running one campaign cell and (de)serializing its result.
//!
//! [`CellResult`] is the checkpoint unit: everything the aggregation
//! layer needs, written as one JSON file per cell. Serialization uses the
//! vendored `serde_json` writer; deserialization goes through the strict
//! [`regnet_metrics::JsonValue`] reader. Every numeric field is either an
//! `f64` (shortest-roundtrip formatting makes the JSON round trip
//! bit-exact) or a `u64` far below 2^53 — except the FNV run digest,
//! which spans the full 64-bit range and therefore travels as a 16-digit
//! hex *string*.

use std::time::Instant;

use regnet_core::RouteDbConfig;
use regnet_metrics::JsonValue;
use regnet_netsim::{
    Experiment, FaultOptions, GoodputSeries, ReliabilityStats, RunOptions, SimConfig, TraceOptions,
};
use serde::Serialize;

use crate::spec::CellSpec;

/// The checkpointed outcome of one cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellResult {
    /// The cell's canonical key (self-describing checkpoint files).
    pub key: String,
    /// 16-hex config hash — also the checkpoint file's stem.
    pub hash: String,
    /// Offered load, flits/ns/switch (== the spec's load).
    pub offered: f64,
    /// Accepted traffic, flits/ns/switch.
    pub accepted: f64,
    pub avg_latency_ns: f64,
    pub p99_latency_ns: f64,
    pub avg_total_latency_ns: f64,
    pub avg_itbs_per_msg: f64,
    pub delivered: u64,
    pub generated: u64,
    pub delivered_payload_flits: u64,
    pub window_cycles: u64,
    /// Mean utilization over switch↔switch channels.
    pub util_mean: f64,
    /// Peak utilization over switch↔switch channels.
    pub util_max: f64,
    /// FNV-1a run digest as 16 hex digits (`None` if the digest observer
    /// was off — never for cells run by this crate, which always enables
    /// it).
    pub digest: Option<String>,
    pub digest_events: u64,
    pub reliability: ReliabilityStats,
    /// Goodput time series, present when the spec asked for one.
    pub goodput: Option<GoodputSeries>,
    /// Wall time of the run, milliseconds. Presentation only — excluded
    /// from [`CellResult::same_results`] so resumed and uninterrupted
    /// campaigns compare equal.
    pub wall_ms: u64,
    /// Peak resident set size of the process when the cell finished, KiB
    /// (0 where `/proc` is unavailable). Machine-dependent like `wall_ms`
    /// and excluded from [`CellResult::same_results`] the same way.
    pub peak_rss_kb: u64,
}

impl CellResult {
    /// Equality of everything the simulation determined (wall time, the
    /// one machine-dependent field, excluded).
    pub fn same_results(&self, other: &CellResult) -> bool {
        let mut a = self.clone();
        let mut b = other.clone();
        a.wall_ms = 0;
        b.wall_ms = 0;
        a.peak_rss_kb = 0;
        b.peak_rss_kb = 0;
        a == b
    }

    /// Serialize for checkpointing.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("CellResult serialization is infallible")
    }

    /// Parse a checkpoint file written by [`CellResult::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<CellResult, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("bad cell checkpoint: {e}"))?;
        let f = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("cell checkpoint missing number {k:?}"))
        };
        let u = |k: &str| -> Result<u64, String> { Ok(f(k)? as u64) };
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(String::from)
                .ok_or_else(|| format!("cell checkpoint missing string {k:?}"))
        };
        let digest = match v.get("digest") {
            None | Some(JsonValue::Null) => None,
            Some(d) => Some(
                d.as_str()
                    .ok_or("cell checkpoint digest must be a hex string")?
                    .to_string(),
            ),
        };
        let rel = v
            .get("reliability")
            .ok_or("cell checkpoint missing reliability")?;
        let ru = |k: &str| -> Result<u64, String> {
            rel.get(k)
                .and_then(|x| x.as_f64())
                .map(|n| n as u64)
                .ok_or_else(|| format!("cell checkpoint reliability missing {k:?}"))
        };
        let reliability = ReliabilityStats {
            link_failures: ru("link_failures")?,
            switch_failures: ru("switch_failures")?,
            host_failures: ru("host_failures")?,
            repairs: ru("repairs")?,
            worms_truncated: ru("worms_truncated")?,
            retransmissions: ru("retransmissions")?,
            dropped_packets: ru("dropped_packets")?,
            dropped_messages: ru("dropped_messages")?,
            unreachable_drops: ru("unreachable_drops")?,
            reconfigurations: ru("reconfigurations")?,
            reconfig_failures: ru("reconfig_failures")?,
            reconfig_stall_cycles: ru("reconfig_stall_cycles")?,
            unreachable_pairs: ru("unreachable_pairs")?,
        };
        let goodput = match v.get("goodput") {
            None | Some(JsonValue::Null) => None,
            Some(g) => {
                let interval =
                    g.get("interval")
                        .and_then(|x| x.as_f64())
                        .ok_or("goodput series missing interval")? as u64;
                let samples = g
                    .get("samples")
                    .and_then(|x| x.as_array())
                    .ok_or("goodput series missing samples")?
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .map(|n| n as u64)
                            .ok_or_else(|| "goodput samples must be numbers".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(GoodputSeries { interval, samples })
            }
        };
        Ok(CellResult {
            key: s("key")?,
            hash: s("hash")?,
            offered: f("offered")?,
            accepted: f("accepted")?,
            avg_latency_ns: f("avg_latency_ns")?,
            p99_latency_ns: f("p99_latency_ns")?,
            avg_total_latency_ns: f("avg_total_latency_ns")?,
            avg_itbs_per_msg: f("avg_itbs_per_msg")?,
            delivered: u("delivered")?,
            generated: u("generated")?,
            delivered_payload_flits: u("delivered_payload_flits")?,
            window_cycles: u("window_cycles")?,
            util_mean: f("util_mean")?,
            util_max: f("util_max")?,
            digest,
            digest_events: u("digest_events")?,
            reliability,
            goodput,
            wall_ms: u("wall_ms")?,
            // Absent in pre-v5 checkpoints; default keeps resume working.
            peak_rss_kb: v.get("peak_rss_kb").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64,
        })
    }
}

/// Build the [`Experiment`] for a cell spec (shared by the runner and the
/// campaign↔fig equivalence tests).
pub fn build_experiment(spec: &CellSpec) -> Result<Experiment, String> {
    let topo = spec.topo.build()?;
    let mut cfg = SimConfig {
        payload_flits: spec.payload_flits,
        ..SimConfig::default()
    };
    if let Some(r) = spec.reconfig_latency_cycles {
        cfg.reconfig_latency_cycles = r;
    }
    Experiment::new(
        topo,
        spec.scheme,
        RouteDbConfig::default(),
        spec.pattern,
        cfg,
    )
    .map_err(|e| format!("cell {}: {e}", spec.canonical_key()))
}

/// The [`RunOptions`] a cell runs under: the spec's window/seed/scheduler
/// plus the always-on determinism digest (observers never perturb
/// results) and the optional goodput series.
pub fn run_options(spec: &CellSpec) -> RunOptions {
    RunOptions {
        warmup_cycles: spec.warmup_cycles,
        measure_cycles: spec.measure_cycles,
        seed: spec.seed,
        trace: TraceOptions {
            digest: true,
            goodput_interval: spec.goodput_interval,
            ..TraceOptions::default()
        },
        faults: spec
            .faults
            .as_ref()
            .map(|f| FaultOptions::with_plan(f.to_plan())),
        scheduler: spec.scheduler,
        ..RunOptions::default()
    }
}

/// Run one cell to completion and capture its checkpointable result.
pub fn run_cell(spec: &CellSpec) -> Result<CellResult, String> {
    let exp = build_experiment(spec)?;
    let opts = run_options(spec);
    let started = Instant::now();
    let obs = exp.run_observed(spec.load, &opts);
    let wall_ms = started.elapsed().as_millis() as u64;
    // The cell key records the requested scheduler; a checkpoint whose
    // label does not match the engine that actually ran would poison
    // resumed campaigns with mislabelled results.
    assert_eq!(
        obs.effective_scheduler.label(),
        spec.scheduler.label(),
        "cell {}: engine substituted a different scheduler",
        spec.canonical_key()
    );
    let n_switches = exp.topology().num_switches();
    let accepted = obs.stats.accepted_flits_per_ns_per_switch(n_switches);
    // Switch-link utilization summary (the paper's Figures 8/9/11 view).
    let descs = exp.channel_descriptors();
    let mut util_sum = 0.0f64;
    let mut util_max = 0.0f64;
    let mut n_links = 0u64;
    for (d, &busy) in descs.iter().zip(&obs.stats.channel_busy) {
        if d.switch_link {
            let util = busy as f64 / obs.stats.window_cycles as f64;
            util_sum += util;
            util_max = util_max.max(util);
            n_links += 1;
        }
    }
    let trace = obs.trace.as_ref();
    Ok(CellResult {
        key: spec.canonical_key(),
        hash: spec.hash_hex(),
        offered: spec.load,
        accepted,
        avg_latency_ns: obs.stats.avg_latency_ns,
        p99_latency_ns: obs.stats.p99_latency_ns,
        avg_total_latency_ns: obs.stats.avg_total_latency_ns,
        avg_itbs_per_msg: obs.stats.avg_itbs_per_msg,
        delivered: obs.stats.delivered,
        generated: obs.stats.generated,
        delivered_payload_flits: obs.stats.delivered_payload_flits,
        window_cycles: obs.stats.window_cycles,
        util_mean: if n_links > 0 {
            util_sum / n_links as f64
        } else {
            0.0
        },
        util_max,
        digest: trace.and_then(|t| t.digest).map(|d| format!("{d:016x}")),
        digest_events: trace.map_or(0, |t| t.digest_events),
        reliability: obs.reliability,
        goodput: obs.trace.and_then(|t| t.goodput),
        wall_ms,
        peak_rss_kb: regnet_metrics::peak_rss_kb().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultSpec, TopoSpec};
    use regnet_core::RoutingScheme;
    use regnet_netsim::Scheduler;
    use regnet_traffic::PatternSpec;

    fn tiny_cell() -> CellSpec {
        CellSpec {
            topo: TopoSpec::TorusCustom {
                rows: 4,
                cols: 4,
                hosts: 2,
            },
            scheme: RoutingScheme::ItbRr,
            pattern: PatternSpec::Uniform,
            load: 0.006,
            seed: 5,
            warmup_cycles: 4_000,
            measure_cycles: 20_000,
            payload_flits: 64,
            scheduler: Scheduler::ActiveSet,
            goodput_interval: Some(5_000),
            reconfig_latency_cycles: Some(2_000),
            faults: None,
        }
    }

    #[test]
    fn cell_result_roundtrips_through_json() {
        let r = run_cell(&tiny_cell()).unwrap();
        assert!(r.delivered > 0);
        assert!(r.digest.is_some());
        assert!(r.goodput.as_ref().is_some_and(|g| !g.samples.is_empty()));
        let text = r.to_json_string();
        let back = CellResult::from_json_str(&text).unwrap();
        assert_eq!(r, back, "JSON round trip must be bit-exact");
    }

    #[test]
    fn run_is_deterministic_and_wall_time_is_ignored() {
        let a = run_cell(&tiny_cell()).unwrap();
        let b = run_cell(&tiny_cell()).unwrap();
        assert!(a.same_results(&b));
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn faulty_cell_reports_reliability() {
        let mut spec = tiny_cell();
        spec.faults = Some(FaultSpec::parse("one-link", "fail_link:3@6000").unwrap());
        let r = run_cell(&spec).unwrap();
        assert_eq!(r.reliability.link_failures, 1);
        let text = r.to_json_string();
        let back = CellResult::from_json_str(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn faulty_parallel_cell_matches_active_set() {
        // Regression: faulted Parallel cells used to silently run on the
        // active-set engine. The label assertion in `run_cell` now fires
        // on any substitution, and the results must be bit-identical to
        // the active-set cell (same key modulo scheduler, so compare
        // field by field rather than via `same_results`).
        let mut reference = tiny_cell();
        reference.faults = Some(FaultSpec::parse("one-link", "fail_link:3@6000").unwrap());
        let mut parallel = reference.clone();
        parallel.scheduler = Scheduler::Parallel { threads: 4 };
        let a = run_cell(&reference).unwrap();
        let p = run_cell(&parallel).unwrap();
        assert_eq!(p.reliability.link_failures, 1);
        assert_eq!(a.digest, p.digest);
        assert_eq!(a.digest_events, p.digest_events);
        assert_eq!(a.reliability, p.reliability);
        assert_eq!(a.delivered, p.delivered);
        assert_eq!(a.generated, p.generated);
        assert_eq!(a.accepted, p.accepted);
        assert_eq!(a.avg_latency_ns, p.avg_latency_ns);
        assert_eq!(a.goodput, p.goodput);
    }

    #[test]
    fn bad_checkpoint_is_rejected() {
        assert!(CellResult::from_json_str("{}").is_err());
        assert!(CellResult::from_json_str("not json").is_err());
    }
}
