//! Checkpointed result storage: one JSON file per cell, named by its
//! config hash, written atomically.
//!
//! The store is what makes campaigns resumable: before running, the
//! work-queue asks the store which hashes already exist and skips them;
//! after each cell lands, the result is written to `<hash>.json` via a
//! temporary file + rename, so a kill at any instant leaves either no
//! file or a complete one — never a torn checkpoint.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::cell::CellResult;

/// A results directory holding one `cells/<hash>.json` per finished cell.
pub struct ResultStore {
    root: PathBuf,
    cells: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) a results directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultStore, String> {
        let root = root.into();
        let cells = root.join("cells");
        fs::create_dir_all(&cells)
            .map_err(|e| format!("cannot create results dir {}: {e}", cells.display()))?;
        Ok(ResultStore { root, cells })
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn cell_path(&self, hash: &str) -> PathBuf {
        self.cells.join(format!("{hash}.json"))
    }

    /// Is this cell already checkpointed?
    pub fn contains(&self, hash: &str) -> bool {
        self.cell_path(hash).is_file()
    }

    /// Load one checkpointed cell.
    pub fn load(&self, hash: &str) -> Result<CellResult, String> {
        let path = self.cell_path(hash);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        let result = CellResult::from_json_str(&text)
            .map_err(|e| format!("corrupt checkpoint {}: {e}", path.display()))?;
        if result.hash != hash {
            return Err(format!(
                "checkpoint {} holds hash {} (file renamed or corrupted)",
                path.display(),
                result.hash
            ));
        }
        Ok(result)
    }

    /// Checkpoint one cell atomically (tmp file + rename).
    pub fn save(&self, result: &CellResult) -> Result<(), String> {
        let path = self.cell_path(&result.hash);
        let tmp = self.cells.join(format!("{}.json.tmp", result.hash));
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
            f.write_all(result.to_json_string().as_bytes())
                .and_then(|_| f.write_all(b"\n"))
                .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            f.sync_all()
                .map_err(|e| format!("cannot sync {}: {e}", tmp.display()))?;
        }
        fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot commit checkpoint {}: {e}", path.display()))
    }

    /// Load every checkpointed cell, keyed by hash. `BTreeMap` so the
    /// aggregate view is ordered identically regardless of which worker
    /// finished first (or which run of a resumed campaign wrote the file).
    pub fn load_all(&self) -> Result<BTreeMap<String, CellResult>, String> {
        let mut out = BTreeMap::new();
        let entries = fs::read_dir(&self.cells)
            .map_err(|e| format!("cannot list {}: {e}", self.cells.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list cells dir: {e}"))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            // Skip tmp files left by a kill mid-write.
            let Some(hash) = name.strip_suffix(".json") else {
                continue;
            };
            out.insert(hash.to_string(), self.load(hash)?);
        }
        Ok(out)
    }

    /// Hashes of every checkpointed cell.
    pub fn hashes(&self) -> Result<Vec<String>, String> {
        Ok(self.load_all()?.into_keys().collect())
    }

    /// Number of checkpointed cells (cheap: counts files, no parsing).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.cells)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| {
                        e.path()
                            .file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.ends_with(".json"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delete every checkpoint (the `--fresh` flag).
    pub fn clear(&self) -> Result<(), String> {
        let entries = fs::read_dir(&self.cells)
            .map_err(|e| format!("cannot list {}: {e}", self.cells.display()))?;
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_file() {
                fs::remove_file(&path)
                    .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_netsim::ReliabilityStats;

    fn fake_result(hash: &str, offered: f64) -> CellResult {
        CellResult {
            key: format!("key-of-{hash}"),
            hash: hash.to_string(),
            offered,
            accepted: offered * 0.97,
            avg_latency_ns: 812.5,
            p99_latency_ns: 2200.0,
            avg_total_latency_ns: 950.25,
            avg_itbs_per_msg: 0.125,
            delivered: 12345,
            generated: 12350,
            delivered_payload_flits: 790_080,
            window_cycles: 150_000,
            util_mean: 0.21,
            util_max: 0.55,
            digest: Some("deadbeefcafe0123".to_string()),
            digest_events: 12345,
            reliability: ReliabilityStats::default(),
            goodput: None,
            wall_ms: 42,
            peak_rss_kb: 0,
        }
    }

    #[test]
    fn save_load_roundtrip_and_resume_view() {
        let dir = std::env::temp_dir().join(format!("regnet-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let a = fake_result("00000000000000aa", 0.01);
        let b = fake_result("00000000000000bb", 0.02);
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.contains(&a.hash));
        assert!(!store.contains("00000000000000cc"));
        assert_eq!(store.load(&a.hash).unwrap(), a);
        let all = store.load_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[&b.hash], b);
        // Re-opening sees the same contents (that *is* resume).
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.hashes().unwrap(), vec![a.hash, b.hash]);
        reopened.clear().unwrap();
        assert!(reopened.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_ignored_and_mismatched_hash_rejected() {
        let dir = std::env::temp_dir().join(format!("regnet-store2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let a = fake_result("00000000000000aa", 0.01);
        store.save(&a).unwrap();
        // A kill mid-write leaves a tmp file behind: load_all must skip it.
        fs::write(dir.join("cells/00000000000000bb.json.tmp"), "{garbage").unwrap();
        assert_eq!(store.load_all().unwrap().len(), 1);
        // A renamed checkpoint (hash mismatch) must be refused, not
        // silently attributed to the wrong cell.
        fs::copy(
            dir.join("cells/00000000000000aa.json"),
            dir.join("cells/00000000000000cc.json"),
        )
        .unwrap();
        assert!(store.load("00000000000000cc").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
