//! Live status files: a machine-readable `status.json` that long-running
//! tools republish as work lands.
//!
//! The campaign runner (and the `fault_sweep`/`bench_report` binaries)
//! can take hours; their stderr progress lines are useless to anything
//! but a human tail. A [`StatusBoard`] mirrors the same information into
//! a JSON snapshot — counts, per-worker state, ETA, recent completions,
//! last errors — written with the store's atomic tmp+rename discipline,
//! so a reader never observes a torn file. `campaign --watch` renders the
//! snapshot as a terminal dashboard ([`render_status`]) and CI validates
//! it mid-run and after completion ([`validate_status_json`]).
//!
//! Wall-clock only lives here (`elapsed_secs`, `eta_secs`, timestamps):
//! the status file is presentation, never an input to results.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use regnet_metrics::JsonValue;
use serde::Serialize;

use crate::progress::fmt_duration;

/// Schema tag every status file carries.
pub const STATUS_SCHEMA: &str = "regnet-status-v1";

/// How many recent completions / errors a snapshot keeps.
const RECENT_CAP: usize = 8;

/// One worker's instantaneous state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkerStatus {
    /// Worker index, 0-based.
    pub worker: u64,
    /// `"idle"` or `"running"`.
    pub state: String,
    /// Canonical key of the cell being run (`None` when idle).
    pub cell: Option<String>,
}

/// The whole status file, as written and as parsed back.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatusSnapshot {
    /// Always [`STATUS_SCHEMA`].
    pub schema: String,
    /// Which binary is publishing (`"campaign"`, `"fault_sweep"`, ...).
    pub tool: String,
    /// `"running"`, `"done"`, `"failed"` or `"stopped"` (`--stop-after`).
    pub state: String,
    /// Items the invocation set out to land (already-checkpointed cells
    /// of a resumed campaign count as landed, not as work).
    pub total: u64,
    /// Items landed so far.
    pub done: u64,
    /// Items that errored.
    pub failed: u64,
    /// Items not yet landed (includes the ones currently running).
    pub pending: u64,
    /// Extrapolated seconds remaining; `None` until the first item lands
    /// (the `--:--` phase) and once nothing is pending.
    pub eta_secs: Option<f64>,
    /// Wall seconds since the invocation started.
    pub elapsed_secs: f64,
    /// Unix milliseconds when the invocation started / last published.
    pub started_unix_ms: u64,
    pub updated_unix_ms: u64,
    pub workers: Vec<WorkerStatus>,
    /// Most recent completions, oldest first, capped.
    pub recent: Vec<String>,
    /// Most recent errors, oldest first, capped.
    pub last_errors: Vec<String>,
}

impl StatusSnapshot {
    /// Serialize for publishing.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("StatusSnapshot serialization is infallible")
    }

    /// Parse a status file (strict about the fields the dashboard needs).
    pub fn from_json_str(text: &str) -> Result<StatusSnapshot, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("bad status file: {e}"))?;
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(String::from)
                .ok_or_else(|| format!("status file missing string {k:?}"))
        };
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(|x| x.as_f64())
                .map(|n| n as u64)
                .ok_or_else(|| format!("status file missing number {k:?}"))
        };
        let f = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("status file missing number {k:?}"))
        };
        let eta_secs = match v.get("eta_secs") {
            None | Some(JsonValue::Null) => None,
            Some(x) => Some(x.as_f64().ok_or("status file eta_secs must be a number")?),
        };
        let workers = v
            .get("workers")
            .and_then(|x| x.as_array())
            .ok_or("status file missing workers array")?
            .iter()
            .map(|w| {
                let cell = match w.get("cell") {
                    None | Some(JsonValue::Null) => None,
                    Some(c) => Some(
                        c.as_str()
                            .ok_or("worker cell must be a string")?
                            .to_string(),
                    ),
                };
                Ok(WorkerStatus {
                    worker: w
                        .get("worker")
                        .and_then(|x| x.as_f64())
                        .ok_or("worker entry missing index")? as u64,
                    state: w
                        .get("state")
                        .and_then(|x| x.as_str())
                        .ok_or("worker entry missing state")?
                        .to_string(),
                    cell,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let strings = |k: &str| -> Result<Vec<String>, String> {
            v.get(k)
                .and_then(|x| x.as_array())
                .ok_or_else(|| format!("status file missing array {k:?}"))?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(String::from)
                        .ok_or_else(|| format!("{k} entries must be strings"))
                })
                .collect()
        };
        Ok(StatusSnapshot {
            schema: s("schema")?,
            tool: s("tool")?,
            state: s("state")?,
            total: u("total")?,
            done: u("done")?,
            failed: u("failed")?,
            pending: u("pending")?,
            eta_secs,
            elapsed_secs: f("elapsed_secs")?,
            started_unix_ms: u("started_unix_ms")?,
            updated_unix_ms: u("updated_unix_ms")?,
            workers,
            recent: strings("recent")?,
            last_errors: strings("last_errors")?,
        })
    }
}

/// Parse a status file and check its invariants (the CI gate).
pub fn validate_status_json(text: &str) -> Result<StatusSnapshot, String> {
    let snap = StatusSnapshot::from_json_str(text)?;
    if snap.schema != STATUS_SCHEMA {
        return Err(format!(
            "status schema {:?}, expected {STATUS_SCHEMA:?}",
            snap.schema
        ));
    }
    if !matches!(
        snap.state.as_str(),
        "running" | "done" | "failed" | "stopped"
    ) {
        return Err(format!("unknown status state {:?}", snap.state));
    }
    if snap.done + snap.failed + snap.pending != snap.total {
        return Err(format!(
            "status counts do not add up: {} done + {} failed + {} pending != {} total",
            snap.done, snap.failed, snap.pending, snap.total
        ));
    }
    if snap.state == "done" && snap.pending != 0 {
        return Err(format!(
            "state \"done\" with {} cells pending",
            snap.pending
        ));
    }
    for w in &snap.workers {
        match w.state.as_str() {
            "running" if w.cell.is_none() => {
                return Err(format!("worker {} running with no cell", w.worker));
            }
            "running" | "idle" => {}
            other => return Err(format!("unknown worker state {other:?}")),
        }
    }
    Ok(snap)
}

/// Render a snapshot as the `--watch` terminal dashboard.
pub fn render_status(s: &StatusSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("[{}] {}\n", s.tool, s.state));
    let eta = match (s.state.as_str(), s.eta_secs) {
        ("running", Some(e)) => format!(", ETA {}", fmt_duration(e)),
        ("running", None) if s.pending > 0 => ", ETA --:--".to_string(),
        _ => String::new(),
    };
    out.push_str(&format!(
        "  {}/{} done, {} failed, {} pending ({} elapsed{eta})\n",
        s.done,
        s.total,
        s.failed,
        s.pending,
        fmt_duration(s.elapsed_secs)
    ));
    if !s.workers.is_empty() {
        out.push_str("  workers:\n");
        for w in &s.workers {
            match &w.cell {
                Some(cell) => out.push_str(&format!("    w{} {} {cell}\n", w.worker, w.state)),
                None => out.push_str(&format!("    w{} {}\n", w.worker, w.state)),
            }
        }
    }
    if !s.recent.is_empty() {
        out.push_str("  recent:\n");
        for r in &s.recent {
            out.push_str(&format!("    {r}\n"));
        }
    }
    if !s.last_errors.is_empty() {
        out.push_str("  errors:\n");
        for e in &s.last_errors {
            out.push_str(&format!("    {e}\n"));
        }
    }
    out
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Atomic publisher: `status.json` is replaced via tmp + rename, never
/// truncated in place.
pub struct StatusWriter {
    path: PathBuf,
}

impl StatusWriter {
    pub fn new(path: impl Into<PathBuf>) -> StatusWriter {
        StatusWriter { path: path.into() }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write the snapshot atomically (same discipline as the cell store).
    pub fn publish(&self, snap: &StatusSnapshot) -> Result<(), String> {
        let tmp = self.path.with_extension("json.tmp");
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
            f.write_all(snap.to_json_string().as_bytes())
                .and_then(|_| f.write_all(b"\n"))
                .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            f.sync_all()
                .map_err(|e| format!("cannot sync {}: {e}", tmp.display()))?;
        }
        fs::rename(&tmp, &self.path)
            .map_err(|e| format!("cannot commit status {}: {e}", self.path.display()))
    }
}

/// Tracks one invocation's live state and republishes on every change.
///
/// Publish errors are remembered (and printed once to stderr) rather than
/// propagated: a broken status file must never kill a campaign.
pub struct StatusBoard {
    writer: StatusWriter,
    snap: StatusSnapshot,
    started: Instant,
    publish_failed: bool,
}

impl StatusBoard {
    /// Start a board for `tool` over `total` work items with `workers`
    /// worker slots, and publish the initial "running" snapshot.
    pub fn new(path: impl Into<PathBuf>, tool: &str, total: usize, workers: usize) -> StatusBoard {
        let now = unix_ms();
        let mut board = StatusBoard {
            writer: StatusWriter::new(path),
            snap: StatusSnapshot {
                schema: STATUS_SCHEMA.to_string(),
                tool: tool.to_string(),
                state: "running".to_string(),
                total: total as u64,
                done: 0,
                failed: 0,
                pending: total as u64,
                eta_secs: None,
                elapsed_secs: 0.0,
                started_unix_ms: now,
                updated_unix_ms: now,
                workers: (0..workers)
                    .map(|w| WorkerStatus {
                        worker: w as u64,
                        state: "idle".to_string(),
                        cell: None,
                    })
                    .collect(),
                recent: Vec::new(),
                last_errors: Vec::new(),
            },
            started: Instant::now(),
            publish_failed: false,
        };
        board.publish();
        board
    }

    /// A worker began an item.
    pub fn started(&mut self, worker: usize, item: &str) {
        self.set_worker(worker, "running", Some(item.to_string()));
        self.publish();
    }

    /// A worker landed an item.
    pub fn done(&mut self, worker: usize, item: &str) {
        self.snap.done += 1;
        self.snap.pending = self.snap.pending.saturating_sub(1);
        push_capped(&mut self.snap.recent, item.to_string());
        self.set_worker(worker, "idle", None);
        self.publish();
    }

    /// A worker's item errored.
    pub fn failed(&mut self, worker: usize, item: &str, error: &str) {
        self.snap.failed += 1;
        self.snap.pending = self.snap.pending.saturating_sub(1);
        push_capped(&mut self.snap.last_errors, format!("{item}: {error}"));
        self.set_worker(worker, "idle", None);
        self.publish();
    }

    /// Final snapshot: `"done"`, `"failed"` or `"stopped"`. Remaining
    /// pending work stays in the counts (that is what "stopped" means);
    /// all workers go idle.
    pub fn finish(&mut self, state: &str) {
        self.snap.state = state.to_string();
        for w in &mut self.snap.workers {
            w.state = "idle".to_string();
            w.cell = None;
        }
        self.publish();
    }

    /// The current snapshot (tests, callers that want the counts).
    pub fn snapshot(&self) -> &StatusSnapshot {
        &self.snap
    }

    fn set_worker(&mut self, worker: usize, state: &str, cell: Option<String>) {
        if let Some(w) = self.snap.workers.get_mut(worker) {
            w.state = state.to_string();
            w.cell = cell;
        }
    }

    fn publish(&mut self) {
        self.snap.elapsed_secs = self.started.elapsed().as_secs_f64();
        self.snap.updated_unix_ms = unix_ms();
        self.snap.eta_secs = if self.snap.done > 0 && self.snap.pending > 0 {
            Some(self.snap.elapsed_secs / self.snap.done as f64 * self.snap.pending as f64)
        } else {
            None
        };
        if let Err(e) = self.writer.publish(&self.snap) {
            if !self.publish_failed {
                eprintln!("warning: {e} (status updates disabled)");
                self.publish_failed = true;
            }
        }
    }
}

fn push_capped(v: &mut Vec<String>, item: String) {
    v.push(item);
    if v.len() > RECENT_CAP {
        v.remove(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_status(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("regnet-status-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("status.json")
    }

    fn read(path: &Path) -> StatusSnapshot {
        validate_status_json(&fs::read_to_string(path).unwrap()).unwrap()
    }

    #[test]
    fn board_publishes_valid_snapshots_through_a_run() {
        let path = temp_status("run");
        let mut board = StatusBoard::new(&path, "campaign", 3, 2);
        let s = read(&path);
        assert_eq!(s.state, "running");
        assert_eq!((s.total, s.done, s.pending), (3, 0, 3));
        assert_eq!(s.eta_secs, None, "no ETA before the first item lands");
        assert_eq!(s.workers.len(), 2);

        board.started(0, "cell-a");
        let s = read(&path);
        assert_eq!(s.workers[0].state, "running");
        assert_eq!(s.workers[0].cell.as_deref(), Some("cell-a"));

        board.done(0, "cell-a");
        let s = read(&path);
        assert_eq!((s.done, s.pending), (1, 2));
        assert!(s.eta_secs.is_some(), "ETA appears once one item landed");
        assert_eq!(s.recent, vec!["cell-a"]);
        assert_eq!(s.workers[0].state, "idle");

        board.started(1, "cell-b");
        board.failed(1, "cell-b", "boom");
        let s = read(&path);
        assert_eq!((s.done, s.failed, s.pending), (1, 1, 1));
        assert_eq!(s.last_errors, vec!["cell-b: boom"]);

        board.started(0, "cell-c");
        board.done(0, "cell-c");
        board.finish("done");
        let s = read(&path);
        assert_eq!(s.state, "done");
        assert_eq!((s.done, s.failed, s.pending), (2, 1, 0));
        assert!(s.workers.iter().all(|w| w.state == "idle"));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let path = temp_status("rt");
        let mut board = StatusBoard::new(&path, "fault_sweep", 2, 1);
        board.started(0, "k=1");
        board.done(0, "k=1");
        let text = fs::read_to_string(&path).unwrap();
        let back = StatusSnapshot::from_json_str(&text).unwrap();
        assert_eq!(&back, board.snapshot());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn validation_rejects_broken_files() {
        assert!(validate_status_json("not json").is_err());
        assert!(validate_status_json("{}").is_err());
        let path = temp_status("bad");
        let board = StatusBoard::new(&path, "t", 1, 1);
        let good = board.snapshot().to_json_string();
        // Wrong schema tag.
        let bad = good.replace(STATUS_SCHEMA, "regnet-status-v0");
        assert!(validate_status_json(&bad).is_err());
        // Counts that do not add up.
        let bad = good.replace("\"total\": 1", "\"total\": 5");
        assert!(validate_status_json(&bad).is_err());
        // Unknown run state.
        let bad = good.replace("\"running\"", "\"jogging\"");
        assert!(validate_status_json(&bad).is_err());
        assert!(validate_status_json(&good).is_ok());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn stopped_runs_keep_their_pending_count() {
        let path = temp_status("stop");
        let mut board = StatusBoard::new(&path, "campaign", 4, 1);
        board.started(0, "a");
        board.done(0, "a");
        board.finish("stopped");
        let s = read(&path);
        assert_eq!(s.state, "stopped");
        assert_eq!((s.done, s.pending), (1, 3));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn recent_and_error_lists_are_capped() {
        let path = temp_status("cap");
        let mut board = StatusBoard::new(&path, "t", 32, 1);
        for i in 0..12 {
            board.done(0, &format!("cell-{i}"));
        }
        let s = read(&path);
        assert_eq!(s.recent.len(), RECENT_CAP);
        assert_eq!(s.recent[0], "cell-4", "oldest entries dropped first");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn dashboard_renders_every_section() {
        let path = temp_status("render");
        let mut board = StatusBoard::new(&path, "campaign", 3, 2);
        board.started(0, "torus:8x8:2/ITB-RR");
        board.started(1, "torus:8x8:2/UP-DOWN");
        board.done(1, "torus:8x8:2/UP-DOWN");
        board.failed(1, "mesh:4x4:2/ITB-SP", "no such cell");
        let text = render_status(board.snapshot());
        assert!(text.contains("[campaign] running"));
        assert!(text.contains("1/3 done, 1 failed, 1 pending"));
        assert!(text.contains("w0 running torus:8x8:2/ITB-RR"));
        assert!(text.contains("w1 idle"));
        assert!(text.contains("torus:8x8:2/UP-DOWN"));
        assert!(text.contains("mesh:4x4:2/ITB-SP: no such cell"));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
