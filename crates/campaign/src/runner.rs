//! The campaign work-queue: fan pending cells across a worker pool,
//! checkpoint each result as it lands.
//!
//! Workers pull cell indices from a shared atomic counter (no
//! pre-partitioning, so one slow cell never idles the pool) and send
//! finished [`CellResult`]s back over a channel; the **main thread** owns
//! the [`ResultStore`] and the progress callback, so checkpointing stays
//! single-writer and the callback needs no synchronization. Because each
//! cell is bit-deterministic given its spec and results are keyed by
//! config hash, the store's final contents are independent of worker
//! count and completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::cell::{run_cell, CellResult};
use crate::spec::{PlannedCell, RunPlan};
use crate::store::ResultStore;

/// Work-queue knobs.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads (1 = run cells on the calling thread).
    pub threads: usize,
    /// Run at most this many pending cells, then stop — the controlled
    /// "kill it halfway" used by the resume tests and `--stop-after`.
    /// The truncation is deterministic: the first N cells of the pending
    /// queue are kept, in plan order.
    pub stop_after: Option<usize>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            threads: 1,
            stop_after: None,
        }
    }
}

/// Progress event delivered (on the caller's thread) after each cell is
/// checkpointed.
pub struct CellDone<'a> {
    pub cell: &'a PlannedCell,
    pub result: &'a CellResult,
    /// Worker (0-based) that ran the cell.
    pub worker: usize,
    /// Cells finished during this invocation so far (1-based).
    pub completed: usize,
    /// Cells this invocation set out to run.
    pub pending: usize,
}

/// Everything the runner tells its caller, delivered on the calling
/// thread. `Started`/`Done`/`Failed` interleave in completion order
/// (which varies run to run); results themselves never depend on it.
pub enum RunnerEvent<'a> {
    /// A worker pulled a cell off the queue and began simulating it.
    Started {
        worker: usize,
        cell: &'a PlannedCell,
    },
    /// A cell finished and its checkpoint landed in the store.
    Done(CellDone<'a>),
    /// A cell failed; the same error is folded into `run_plan`'s `Err`.
    Failed {
        worker: usize,
        cell: &'a PlannedCell,
        error: &'a str,
    },
}

/// What one invocation did.
#[derive(Debug)]
pub struct RunOutcome {
    /// Cells executed (and checkpointed) by this invocation.
    pub ran: usize,
    /// Cells skipped because the store already had their hash (resume).
    pub skipped: usize,
    /// Cells left unrun because `stop_after` cut the queue short.
    pub remaining: usize,
}

impl RunOutcome {
    /// Did this invocation finish the whole plan?
    pub fn complete(&self) -> bool {
        self.remaining == 0
    }
}

/// A worker's report back to the main thread.
enum Msg {
    Started {
        worker: usize,
        index: usize,
    },
    Finished {
        worker: usize,
        index: usize,
        // Boxed so `Started` and `Finished` stay close in size.
        outcome: Box<Result<CellResult, String>>,
    },
}

/// Run every cell of `plan` that is not already checkpointed in `store`,
/// fanning across `opts.threads` workers; `on_event` fires on the calling
/// thread as workers start cells and as checkpoints land.
pub fn run_plan(
    plan: &RunPlan,
    store: &ResultStore,
    opts: &RunnerOptions,
    mut on_event: impl FnMut(RunnerEvent<'_>),
) -> Result<RunOutcome, String> {
    let mut pending: Vec<&PlannedCell> = plan
        .cells
        .iter()
        .filter(|c| !store.contains(&c.hash))
        .collect();
    let skipped = plan.cells.len() - pending.len();
    let mut remaining = 0;
    if let Some(n) = opts.stop_after {
        if pending.len() > n {
            remaining = pending.len() - n;
            pending.truncate(n);
        }
    }
    if pending.is_empty() {
        return Ok(RunOutcome {
            ran: 0,
            skipped,
            remaining,
        });
    }

    let workers = opts.threads.clamp(1, pending.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Msg>();
    let mut errors: Vec<String> = Vec::new();
    let mut completed = 0usize;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let pending = &pending;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pending.len() {
                    break;
                }
                // A dropped receiver means the main thread bailed on a
                // checkpoint error; just stop pulling work.
                if tx
                    .send(Msg::Started {
                        worker: w,
                        index: i,
                    })
                    .is_err()
                {
                    break;
                }
                let outcome = Box::new(run_cell(&pending[i].spec));
                let msg = Msg::Finished {
                    worker: w,
                    index: i,
                    outcome,
                };
                if tx.send(msg).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for msg in rx {
            match msg {
                Msg::Started { worker, index } => on_event(RunnerEvent::Started {
                    worker,
                    cell: pending[index],
                }),
                Msg::Finished {
                    worker,
                    index,
                    outcome,
                } => match *outcome {
                    Ok(result) => {
                        if let Err(e) = store.save(&result) {
                            errors.push(e);
                            break;
                        }
                        completed += 1;
                        on_event(RunnerEvent::Done(CellDone {
                            cell: pending[index],
                            result: &result,
                            worker,
                            completed,
                            pending: pending.len(),
                        }));
                    }
                    Err(e) => {
                        let error = format!("cell {}: {e}", pending[index].hash);
                        on_event(RunnerEvent::Failed {
                            worker,
                            cell: pending[index],
                            error: &error,
                        });
                        errors.push(error);
                    }
                },
            }
        }
    });

    if let Some(first) = errors.first() {
        let extra = errors.len() - 1;
        return Err(if extra > 0 {
            format!("{first} (+{extra} more cell errors)")
        } else {
            first.clone()
        });
    }
    Ok(RunOutcome {
        ran: completed,
        skipped,
        remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;
    use std::fs;

    fn tiny_plan() -> RunPlan {
        CampaignSpec::from_json_str(
            r#"{
                "name": "runner-test",
                "defaults": {"warmup_cycles": 2000, "measure_cycles": 10000,
                             "payload_flits": 64, "seed": 7},
                "sweeps": [
                    {"group": "g", "topos": ["torus:4x4:2"], "schemes": ["ITB-RR", "UP/DOWN"],
                     "patterns": ["uniform"], "loads": [0.004, 0.008]}
                ]
            }"#,
        )
        .unwrap()
        .expand()
        .unwrap()
    }

    fn temp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!("regnet-runner-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn pool_runs_everything_and_resume_skips() {
        let plan = tiny_plan();
        let (dir, store) = temp_store("pool");
        let mut seen = 0;
        let mut started = 0;
        let out = run_plan(&plan, &store, &RunnerOptions::default(), |ev| match ev {
            RunnerEvent::Started { worker, .. } => {
                assert_eq!(worker, 0, "single-threaded runner has one worker");
                started += 1;
            }
            RunnerEvent::Done(d) => {
                seen = d.completed;
                assert_eq!(d.pending, 4);
            }
            RunnerEvent::Failed { error, .. } => panic!("unexpected failure: {error}"),
        })
        .unwrap();
        assert_eq!(started, 4, "every cell announces before it runs");
        assert_eq!(out.ran, 4);
        assert_eq!(out.skipped, 0);
        assert!(out.complete());
        assert_eq!(seen, 4);
        assert_eq!(store.len(), 4);
        // Second invocation: everything is checkpointed already.
        let again = run_plan(&plan, &store, &RunnerOptions::default(), |_| {
            panic!("nothing should run on resume of a finished campaign")
        })
        .unwrap();
        assert_eq!(again.ran, 0);
        assert_eq!(again.skipped, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let plan = tiny_plan();
        let (dir1, s1) = temp_store("t1");
        let (dir4, s4) = temp_store("t4");
        run_plan(
            &plan,
            &s1,
            &RunnerOptions {
                threads: 1,
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        run_plan(
            &plan,
            &s4,
            &RunnerOptions {
                threads: 4,
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        let a = s1.load_all().unwrap();
        let b = s4.load_all().unwrap();
        assert_eq!(a.len(), b.len());
        for (hash, ra) in &a {
            assert!(
                ra.same_results(&b[hash]),
                "cell {hash} differs across worker counts"
            );
        }
        let _ = fs::remove_dir_all(&dir1);
        let _ = fs::remove_dir_all(&dir4);
    }

    #[test]
    fn stop_after_truncates_then_resume_completes() {
        let plan = tiny_plan();
        let (dir, store) = temp_store("stop");
        let out = run_plan(
            &plan,
            &store,
            &RunnerOptions {
                threads: 2,
                stop_after: Some(2),
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(out.ran, 2);
        assert_eq!(out.remaining, 2);
        assert!(!out.complete());
        assert_eq!(store.len(), 2);
        let resumed = run_plan(&plan, &store, &RunnerOptions::default(), |_| {}).unwrap();
        assert_eq!(resumed.ran, 2);
        assert_eq!(resumed.skipped, 2);
        assert!(resumed.complete());
        assert_eq!(store.len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
