//! End-to-end campaign orchestrator tests: hash stability across file
//! spellings, interrupted-then-resumed campaigns converging to the
//! uninterrupted result, and campaign cells reproducing exactly what a
//! directly-driven `Experiment` produces.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use regnet_campaign::{run_plan, CampaignSpec, CellSpec, ResultStore, RunnerOptions, TopoSpec};
use regnet_core::{RouteDbConfig, RoutingScheme};
use regnet_netsim::{Experiment, RunOptions, Scheduler, SimConfig, TraceOptions};
use regnet_traffic::PatternSpec;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regnet-campaign-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small 6-cell campaign used by the resume tests.
fn small_campaign() -> &'static str {
    r#"{
        "schema": "regnet-campaign-v1",
        "name": "it-small",
        "defaults": {"warmup_cycles": 2000, "measure_cycles": 10000,
                     "payload_flits": 64, "seed": 9},
        "sweeps": [
            {"group": "torus", "topos": ["torus:4x4:2"],
             "schemes": ["UP/DOWN", "ITB-RR"], "patterns": ["uniform"],
             "loads": [0.004, 0.008, 0.012]}
        ]
    }"#
}

/// Satellite: identical cell specs hash identically no matter how the
/// campaign file spells them — field order inside objects, axis order
/// across sweeps, numeric spellings (0.008 vs 8e-3) are all irrelevant;
/// only the resolved cell matters.
#[test]
fn hashes_are_stable_across_json_field_orderings() {
    let a = CampaignSpec::from_json_str(
        r#"{
            "name": "order-a",
            "defaults": {"warmup_cycles": 2000, "measure_cycles": 10000,
                         "payload_flits": 64, "seed": 3},
            "sweeps": [
                {"group": "g", "topos": ["torus:4x4:2"], "schemes": ["ITB-RR", "UP/DOWN"],
                 "patterns": ["uniform"], "loads": [0.004, 0.008]}
            ]
        }"#,
    )
    .unwrap()
    .expand()
    .unwrap();
    // Same cells: every object's fields reordered, scheme axis reversed,
    // loads reversed and respelled, defaults pushed into the sweep.
    let b = CampaignSpec::from_json_str(
        r#"{
            "sweeps": [
                {"loads": [8e-3, 4.0e-3], "patterns": ["uniform"],
                 "schemes": ["up_down", "itb-rr"], "topos": ["torus:4x4:2"],
                 "group": "g",
                 "seed": 3, "payload_flits": 64,
                 "measure_cycles": 10000, "warmup_cycles": 2000}
            ],
            "name": "order-b"
        }"#,
    )
    .unwrap()
    .expand()
    .unwrap();
    let ha: BTreeSet<&str> = a.cells.iter().map(|c| c.hash.as_str()).collect();
    let hb: BTreeSet<&str> = b.cells.iter().map(|c| c.hash.as_str()).collect();
    assert_eq!(a.len(), 4);
    assert_eq!(ha, hb, "file spelling leaked into the config hashes");
    // And the hashes really separate distinct cells.
    assert_eq!(ha.len(), 4);
}

/// Satellite: a campaign killed halfway (queue dropped after N cells) and
/// restarted converges to the same results directory as an uninterrupted
/// run, cell for cell.
#[test]
fn interrupted_campaign_resumes_to_identical_results() {
    let plan = CampaignSpec::from_json_str(small_campaign())
        .unwrap()
        .expand()
        .unwrap();
    assert_eq!(plan.len(), 6);

    // Reference: one uninterrupted run.
    let ref_dir = temp_dir("ref");
    let ref_store = ResultStore::open(&ref_dir).unwrap();
    let out = run_plan(&plan, &ref_store, &RunnerOptions::default(), |_| {}).unwrap();
    assert!(out.complete());

    // Interrupted: 2 workers, queue dropped after 3 cells, then restart.
    let res_dir = temp_dir("res");
    let res_store = ResultStore::open(&res_dir).unwrap();
    let first = run_plan(
        &plan,
        &res_store,
        &RunnerOptions {
            threads: 2,
            stop_after: Some(3),
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(first.ran, 3);
    assert!(!first.complete());
    assert_eq!(res_store.len(), 3, "interrupted run checkpointed 3 cells");
    let second = run_plan(
        &plan,
        &res_store,
        &RunnerOptions {
            threads: 2,
            stop_after: None,
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(
        second.skipped, 3,
        "restart must skip the checkpointed cells"
    );
    assert_eq!(second.ran, 3);
    assert!(second.complete());

    let reference = ref_store.load_all().unwrap();
    let merged = res_store.load_all().unwrap();
    assert_eq!(
        reference.keys().collect::<Vec<_>>(),
        merged.keys().collect::<Vec<_>>()
    );
    for (hash, r) in &reference {
        assert!(
            r.same_results(&merged[hash]),
            "cell {hash} differs between the uninterrupted and resumed runs"
        );
    }
    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&res_dir);
}

/// Acceptance: a campaign cell produces exactly what the fig binaries'
/// directly-driven `Experiment` produces for the same configuration —
/// same stats, same digest — even when the direct run enables observers
/// the campaign doesn't (fig08 traces channel utilization; observers
/// never perturb results). The cell here is fig08's UP/DOWN point at
/// offered 0.015 on the paper torus, with windows shortened identically
/// on both sides to keep the test fast.
#[test]
fn campaign_cell_matches_direct_experiment() {
    let spec = CellSpec {
        topo: TopoSpec::Torus,
        scheme: RoutingScheme::UpDown,
        pattern: PatternSpec::Uniform,
        load: 0.015,
        seed: 8,
        warmup_cycles: 5_000,
        measure_cycles: 20_000,
        payload_flits: SimConfig::default().payload_flits,
        scheduler: Scheduler::ActiveSet,
        goodput_interval: None,
        reconfig_latency_cycles: None,
        faults: None,
    };
    let cell = regnet_campaign::run_cell(&spec).unwrap();

    // The direct path, as crates/bench/src/experiments.rs drives fig08:
    // same topology constructor, same config, same seed and windows, plus
    // the channel-utilization trace the fig binary turns on.
    let exp = Experiment::new(
        regnet_topology::gen::torus_2d(8, 8, 8).unwrap(),
        RoutingScheme::UpDown,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        SimConfig::default(),
    )
    .unwrap();
    let opts = RunOptions {
        warmup_cycles: 5_000,
        measure_cycles: 20_000,
        seed: 8,
        trace: TraceOptions {
            digest: true,
            channel_util_interval: Some(5_000),
            ..TraceOptions::default()
        },
        ..RunOptions::default()
    };
    let obs = exp.run_observed(0.015, &opts);
    let n_switches = exp.topology().num_switches();

    assert_eq!(
        cell.accepted,
        obs.stats.accepted_flits_per_ns_per_switch(n_switches),
        "accepted traffic diverged between campaign and direct runs"
    );
    assert_eq!(cell.avg_latency_ns, obs.stats.avg_latency_ns);
    assert_eq!(cell.p99_latency_ns, obs.stats.p99_latency_ns);
    assert_eq!(cell.avg_itbs_per_msg, obs.stats.avg_itbs_per_msg);
    assert_eq!(cell.delivered, obs.stats.delivered);
    assert_eq!(cell.generated, obs.stats.generated);
    let trace = obs.trace.expect("digest observer was enabled");
    assert_eq!(
        cell.digest,
        trace.digest.map(|d| format!("{d:016x}")),
        "trace digest diverged between campaign and direct runs"
    );
    assert_eq!(cell.digest_events, trace.digest_events);
    assert!(cell.delivered > 0, "the cell must carry real traffic");
}

/// The committed paper campaign expands to the fig08/09/11 grids: right
/// cell count, no duplicates, and the exact loads the fig binaries use.
#[test]
fn paper_figs_campaign_expands_to_the_fig_grids() {
    let text = fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../campaigns/paper_figs.json"
    ))
    .expect("campaigns/paper_figs.json is committed");
    let plan = CampaignSpec::from_json_str(&text)
        .unwrap()
        .expand()
        .unwrap();
    assert!(!plan.is_empty());
    // Every hash unique by construction; spot-check the fig08 anchor cells.
    let keys: Vec<&str> = plan.cells.iter().map(|c| c.key.as_str()).collect();
    for needle in [
        "topo=torus;scheme=UP/DOWN;pattern=uniform;load=0.015;seed=8",
        "topo=torus;scheme=ITB-RR;pattern=uniform;load=0.015;seed=8",
        "topo=torus;scheme=ITB-RR;pattern=uniform;load=0.03;seed=8",
        "topo=express;scheme=UP/DOWN;pattern=uniform;load=0.066;seed=8",
        "topo=express;scheme=ITB-RR;pattern=uniform;load=0.066;seed=8",
    ] {
        assert!(
            keys.iter().any(|k| k.starts_with(needle)),
            "paper campaign is missing the fig cell {needle:?}"
        );
    }
    // fig11's hotspot sweep rides along.
    assert!(
        keys.iter()
            .any(|k| k.contains("pattern=hotspot:") && k.contains("load=0.0123")),
        "paper campaign is missing fig11's hotspot cell"
    );
}
