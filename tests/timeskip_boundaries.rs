//! Boundary regressions for event-driven time skipping: the watchdog
//! must trip at the *same cycle* as under the active set even when the
//! stall lies inside a span the driver would otherwise jump over, and
//! `begin`/`end_measurement` (plus `run_until_drained`) must land on
//! identical cycles, with sampling observers emitting identical series.

use regnet::prelude::*;

/// Build a deterministic quiet stall: one scheduled message, generation
/// frozen, and a fault that cuts the source's link mid-worm. Both the
/// retransmission timer and the reconfiguration completion are pushed
/// far beyond the watchdog horizon, so the truncated packet sits live in
/// a quiescent network — exactly the state the watchdog exists to catch
/// — and the panic must land on the same cycle under every driver.
fn watchdog_panic(scheduler: Scheduler) -> String {
    let result = std::panic::catch_unwind(|| {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let scheme = RoutingScheme::ItbRr;
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = SimConfig {
            payload_flits: 64,
            watchdog_cycles: 2_000,
            retransmit_timeout_cycles: 500_000,
            reconfig_latency_cycles: 300_000,
            ..SimConfig::default()
        };
        let src = HostId(0);
        let host_link = topo
            .links()
            .iter()
            .find(|l| {
                l.ends
                    .iter()
                    .any(|e| matches!(e, regnet::topology::LinkEnd::Host { host } if *host == src))
            })
            .expect("host link")
            .id;
        // Cut the worm while it is being clocked out. The loss handler
        // parks the packet on the (far-away) retransmission timer — the
        // host-ok refresh that would strand it only happens when the
        // (equally far-away) reconfiguration completes.
        let plan = FaultPlan::single_link(host_link, 120);
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.001, 7);
        sim.set_scheduler(scheduler);
        sim.enable_faults(FaultOptions::with_plan(plan));
        sim.stop_generation();
        sim.schedule_message(src, HostId(12), 100);
        sim.run(400_000);
        unreachable!("the watchdog must have fired");
    });
    let err = result.expect_err("expected a watchdog panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string")
}

/// A stall inside a skippable span still trips the watchdog at the same
/// cycle (the panic message embeds the cycle and the live-packet count,
/// so string equality pins both).
#[test]
fn watchdog_fires_at_identical_cycle_across_schedulers() {
    let reference = watchdog_panic(Scheduler::ActiveSet);
    assert!(
        reference.contains("watchdog: no flit moved"),
        "unexpected panic: {reference}"
    );
    let event = watchdog_panic(Scheduler::EventDriven);
    assert_eq!(
        reference, event,
        "watchdog panic diverged between the active set and the event driver"
    );
}

fn low_load_run(scheduler: Scheduler) -> (RunStats, Option<TraceReport>, u64, u64) {
    let topo = gen::torus_2d(8, 8, 8).unwrap();
    let scheme = RoutingScheme::ItbRr;
    let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let cfg = SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.0005, 11);
    sim.set_scheduler(scheduler);
    // Sampling observers are themselves time sources: the flush schedule
    // must be kept even across skipped spans.
    sim.enable_trace(TraceOptions {
        channel_util_interval: Some(1_000),
        itb_occupancy_interval: Some(700),
        goodput_interval: Some(1_300),
        digest: true,
        ..TraceOptions::default()
    });
    sim.run(5_000);
    let warmup_end = sim.cycle();
    sim.begin_measurement();
    sim.run(20_000);
    let stats = sim.end_measurement(20_000);
    (stats, sim.trace_report(), warmup_end, sim.cycle())
}

/// Measurement-window boundaries land on identical cycles and every
/// sampled time series (utilization, occupancy, goodput) is identical —
/// and the event driver really did skip.
#[test]
fn measurement_windows_and_series_identical_at_low_load() {
    let (s_a, t_a, w_a, e_a) = low_load_run(Scheduler::ActiveSet);
    let (s_e, t_e, w_e, e_e) = low_load_run(Scheduler::EventDriven);
    assert_eq!((w_a, e_a), (5_000, 25_000), "run boundaries must be exact");
    assert_eq!((w_e, e_e), (5_000, 25_000), "run boundaries must be exact");
    assert_eq!(s_a, s_e, "RunStats diverged at low load");
    let (t_a, t_e) = (t_a.unwrap(), t_e.unwrap());
    assert_eq!(t_a, t_e, "observer report diverged at low load");

    // The comparison is only meaningful if skipping actually engaged.
    let topo = gen::torus_2d(8, 8, 8).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let cfg = SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.0005, 11);
    sim.set_scheduler(Scheduler::EventDriven);
    sim.run(25_000);
    assert!(
        sim.skipped_cycles() > 0,
        "low-load run never skipped a cycle"
    );
}

/// `run_until_drained` reports the same drain cycle: the not-drained
/// state persists across skipped spans, so the returned cycle must be
/// identical to the tick-every-cycle drivers'.
#[test]
fn drain_cycle_identical_across_schedulers() {
    let drain = |scheduler: Scheduler| {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = SimConfig {
            payload_flits: 64,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.001, 3);
        sim.set_scheduler(scheduler);
        sim.stop_generation();
        sim.schedule_message(HostId(0), HostId(9), 2_000);
        sim.schedule_message(HostId(5), HostId(2), 6_000);
        let drained = sim.run_until_drained(50_000).expect("network must drain");
        (drained, sim.skipped_cycles())
    };
    let (d_active, skipped_active) = drain(Scheduler::ActiveSet);
    let (d_event, skipped_event) = drain(Scheduler::EventDriven);
    assert_eq!(d_active, d_event, "drain cycle diverged");
    assert_eq!(skipped_active, 0);
    assert!(
        skipped_event > 0,
        "the gaps before cycle 2000 and between the messages must be skipped"
    );
}
