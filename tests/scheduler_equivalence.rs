//! Scheduler equivalence suite: every cycle-loop driver — active set,
//! event-driven time skipping, shard-parallel — must be bit-identical to
//! the full-scan reference: same `RunStats`, same unified counters, same
//! delivered-message trace digest, same exported Chrome trace, on every
//! paper topology × routing scheme, with and without faults.
//!
//! The driver list and the proof obligations live in the shared harness
//! (`tests/common/mod.rs`); this file only enumerates the matrix points.

mod common;

use common::*;
use regnet::prelude::*;

#[test]
fn torus_updown_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::UpDown);
}

#[test]
fn torus_itb_sp_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::ItbSp);
}

#[test]
fn torus_itb_rr_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::ItbRr);
}

#[test]
fn express_updown_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::UpDown);
}

#[test]
fn express_itb_sp_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::ItbSp);
}

#[test]
fn express_itb_rr_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::ItbRr);
}

#[test]
fn cplant_updown_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::UpDown);
}

#[test]
fn cplant_itb_sp_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::ItbSp);
}

#[test]
fn cplant_itb_rr_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::ItbRr);
}

/// Faults exercise the phase-0 control path (purge GO symbols delivered
/// the same cycle), the deferred loss replay at the epoch barrier, the
/// retransmission wake-ups and — for the event-driven driver — the
/// fault/reconfiguration time sources; every scheduler must agree there
/// too, on every paper topology × routing scheme.
#[test]
fn faulted_torus_updown_schedulers_agree() {
    assert_equivalent_faulted(torus, RoutingScheme::UpDown);
}

#[test]
fn faulted_torus_itb_sp_schedulers_agree() {
    assert_equivalent_faulted(torus, RoutingScheme::ItbSp);
}

#[test]
fn faulted_torus_itb_rr_schedulers_agree() {
    assert_equivalent_faulted(torus, RoutingScheme::ItbRr);
}

#[test]
fn faulted_express_updown_schedulers_agree() {
    assert_equivalent_faulted(express, RoutingScheme::UpDown);
}

#[test]
fn faulted_express_itb_sp_schedulers_agree() {
    assert_equivalent_faulted(express, RoutingScheme::ItbSp);
}

#[test]
fn faulted_express_itb_rr_schedulers_agree() {
    assert_equivalent_faulted(express, RoutingScheme::ItbRr);
}

#[test]
fn faulted_cplant_updown_schedulers_agree() {
    assert_equivalent_faulted(cplant, RoutingScheme::UpDown);
}

#[test]
fn faulted_cplant_itb_sp_schedulers_agree() {
    assert_equivalent_faulted(cplant, RoutingScheme::ItbSp);
}

#[test]
fn faulted_cplant_itb_rr_schedulers_agree() {
    assert_equivalent_faulted(cplant, RoutingScheme::ItbRr);
}

/// With the default 100 µs mapper latency the 12k-cycle window ends
/// before reconfiguration completes, so the equivalence above never sees
/// a route-table swap. Shrink the latency so both the failure and the
/// repair reconfigure *inside* the window — the swap rebuilds the
/// effective `RouteDb` and re-runs path selection, all of which must
/// stay bit-identical across engines.
#[test]
fn faulted_reconfiguration_mid_run_schedulers_agree() {
    let rel = assert_equivalent_faulted_with(
        torus,
        RoutingScheme::ItbRr,
        SimConfig {
            payload_flits: 64,
            reconfig_latency_cycles: 2_000,
            ..SimConfig::default()
        },
    );
    assert!(
        rel.reconfigurations >= 1,
        "the window must contain a completed reconfiguration: {rel:?}"
    );
}

/// The full observability stack — event journal exported as a Chrome
/// trace — must come out byte-identical under every scheduler.
#[test]
fn chrome_trace_export_schedulers_agree() {
    assert_equivalent_observed(|| gen::torus_2d(4, 4, 4).unwrap(), RoutingScheme::ItbRr);
}

/// Force the pool to actually use multiple OS executors (the default on a
/// small CI host may collapse to one) and re-check bit-identity. The
/// engine buffers every cross-shard effect and folds it in a fixed order,
/// so the executor count must be invisible in the results.
#[test]
fn parallel_forced_multi_worker_agrees() {
    // SAFETY: test processes are single-threaded at this point aside from
    // the harness; the variable is read once per `ParEngine::new`.
    std::env::set_var("REGNET_PAR_WORKERS", "4");
    let (s_active, d_active, n_active) =
        run_once(torus, RoutingScheme::ItbRr, Scheduler::ActiveSet);
    let (s_par, d_par, n_par) = run_once(
        torus,
        RoutingScheme::ItbRr,
        Scheduler::Parallel { threads: 4 },
    );
    std::env::remove_var("REGNET_PAR_WORKERS");
    assert_eq!(s_active, s_par, "RunStats diverged with forced workers");
    assert_eq!(
        (d_active, n_active),
        (d_par, n_par),
        "trace digest diverged with forced workers"
    );
}

/// The forced-multi-executor check again, but with the fault plan armed:
/// phase 0 mutates fault state with the workers parked, and the loss
/// replay folds shard-local `(component, packet)` pairs in component
/// order, so a real 4-executor pool must still match the active set bit
/// for bit on a faulted run.
#[test]
fn parallel_forced_multi_worker_faulted_agrees() {
    std::env::set_var("REGNET_PAR_WORKERS", "4");
    assert_equivalent_faulted(torus, RoutingScheme::ItbRr);
    std::env::remove_var("REGNET_PAR_WORKERS");
}
