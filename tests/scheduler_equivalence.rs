//! Scheduler equivalence suite: the active-set cycle loop and the
//! shard-parallel engine must be bit-identical to the full-scan
//! reference — same `RunStats`, same unified counters, same
//! delivered-message trace digest — on every paper topology × routing
//! scheme, with and without faults, and the exported Chrome trace must
//! match byte for byte. The parallel engine is checked at thread counts
//! 1, 2 and 4 (shard counts; actual OS threads are capped by the host,
//! and the result is executor-count-invariant by construction — see
//! `DESIGN.md` §4f).
//!
//! The scan loop stays in the tree precisely so this suite has a ground
//! truth to diff against; see `DESIGN.md` §4e.

use regnet::prelude::*;

fn opts(scheduler: Scheduler) -> RunOptions {
    RunOptions {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
        seed: 42,
        trace: TraceOptions::digest_only(),
        counters: true,
        scheduler,
        ..RunOptions::default()
    }
}

fn cfg() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

fn run_once(
    build: fn() -> Topology,
    scheme: RoutingScheme,
    scheduler: Scheduler,
) -> (RunStats, u64, u64) {
    let exp = Experiment::new(
        build(),
        scheme,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        cfg(),
    )
    .unwrap();
    let (stats, trace) = exp.run_traced(0.01, &opts(scheduler));
    let trace = trace.expect("digest observer was enabled");
    (
        stats,
        trace.digest.expect("digest recorded"),
        trace.digest_events,
    )
}

fn assert_equivalent(build: fn() -> Topology, scheme: RoutingScheme) {
    let (s_scan, d_scan, n_scan) = run_once(build, scheme, Scheduler::Scan);
    let name = build().name().to_string();
    let contenders = [
        Scheduler::ActiveSet,
        Scheduler::Parallel { threads: 1 },
        Scheduler::Parallel { threads: 2 },
        Scheduler::Parallel { threads: 4 },
    ];
    for sched in contenders {
        let (s_other, d_other, n_other) = run_once(build, scheme, sched);
        assert_eq!(
            s_scan.counters, s_other.counters,
            "counter snapshots diverged between schedulers ({name} {scheme:?} {sched:?})"
        );
        assert_eq!(
            s_scan, s_other,
            "RunStats diverged between schedulers ({name} {scheme:?} {sched:?})"
        );
        assert_eq!(
            (d_scan, n_scan),
            (d_other, n_other),
            "trace digest diverged between schedulers ({name} {scheme:?} {sched:?})"
        );
    }
    assert!(n_scan > 0, "expected deliveries during the window");
    assert!(
        s_scan
            .counters
            .as_ref()
            .is_some_and(|c| c.total_events() > 0),
        "the equivalence must cover real traffic"
    );
}

fn torus() -> Topology {
    gen::torus_2d(8, 8, 8).unwrap()
}

fn express() -> Topology {
    gen::torus_2d_express(8, 8, 8).unwrap()
}

fn cplant() -> Topology {
    gen::cplant().unwrap()
}

#[test]
fn torus_updown_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::UpDown);
}

#[test]
fn torus_itb_sp_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::ItbSp);
}

#[test]
fn torus_itb_rr_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::ItbRr);
}

#[test]
fn express_updown_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::UpDown);
}

#[test]
fn express_itb_sp_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::ItbSp);
}

#[test]
fn express_itb_rr_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::ItbRr);
}

#[test]
fn cplant_updown_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::UpDown);
}

#[test]
fn cplant_itb_sp_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::ItbSp);
}

#[test]
fn cplant_itb_rr_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::ItbRr);
}

/// Faults exercise the phase-0 control path (purge GO symbols delivered
/// the same cycle) and the retransmission wake-ups; the schedulers must
/// agree there too.
#[test]
fn faulted_run_schedulers_agree() {
    let run = |scheduler: Scheduler| {
        let topo = torus();
        let link = topo
            .links()
            .iter()
            .find(|l| l.is_switch_link())
            .expect("switch link")
            .id;
        let mut plan = FaultPlan::single_link(link, 4_000);
        plan.repair_link(9_000, link);
        let exp = Experiment::new(
            topo,
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(),
        )
        .unwrap();
        let run_opts = RunOptions {
            faults: Some(FaultOptions::with_plan(plan)),
            ..opts(scheduler)
        };
        exp.run_reliability(0.01, &run_opts)
    };
    let (s_scan, r_scan, t_scan) = run(Scheduler::Scan);
    let t_scan = t_scan.unwrap();
    // `Parallel` falls back to the active-set engine when faults are
    // armed (mid-cycle global purges are inherently cross-shard), so the
    // parallel rows below really re-check the fallback path — they must
    // still agree bit for bit.
    for sched in [
        Scheduler::ActiveSet,
        Scheduler::Parallel { threads: 2 },
        Scheduler::Parallel { threads: 4 },
    ] {
        let (s_other, r_other, t_other) = run(sched);
        assert_eq!(
            s_scan, s_other,
            "RunStats diverged under faults ({sched:?})"
        );
        assert_eq!(
            r_scan, r_other,
            "ReliabilityStats diverged under faults ({sched:?})"
        );
        let t_other = t_other.unwrap();
        assert_eq!(
            (t_scan.digest, t_scan.digest_events),
            (t_other.digest, t_other.digest_events),
            "trace digest diverged under faults ({sched:?})"
        );
    }
    assert!(
        r_scan.link_failures == 1 && r_scan.repairs == 1,
        "the plan must have fired: {r_scan:?}"
    );
}

/// The full observability stack — event journal exported as a Chrome
/// trace — must come out byte-identical under either scheduler.
#[test]
fn chrome_trace_export_schedulers_agree() {
    let run = |scheduler: Scheduler| {
        let exp = Experiment::new(
            gen::torus_2d(4, 4, 4).unwrap(),
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(),
        )
        .unwrap();
        let obs = exp.run_observed(
            0.01,
            &RunOptions {
                events: Some(EventOptions::default()),
                ..opts(scheduler)
            },
        );
        (
            obs.stats,
            obs.journal.expect("journal enabled").to_chrome().to_json(),
        )
    };
    let (s_scan, t_scan) = run(Scheduler::Scan);
    for sched in [
        Scheduler::ActiveSet,
        Scheduler::Parallel { threads: 2 },
        Scheduler::Parallel { threads: 4 },
    ] {
        let (s_other, t_other) = run(sched);
        assert_eq!(
            s_scan, s_other,
            "RunStats diverged with observers on ({sched:?})"
        );
        assert_eq!(t_scan, t_other, "Chrome trace export diverged ({sched:?})");
    }
    assert!(!t_scan.is_empty());
}

/// Force the pool to actually use multiple OS executors (the default on a
/// small CI host may collapse to one) and re-check bit-identity. The
/// engine buffers every cross-shard effect and folds it in a fixed order,
/// so the executor count must be invisible in the results.
#[test]
fn parallel_forced_multi_worker_agrees() {
    // SAFETY: test processes are single-threaded at this point aside from
    // the harness; the variable is read once per `ParEngine::new`.
    std::env::set_var("REGNET_PAR_WORKERS", "4");
    let (s_active, d_active, n_active) =
        run_once(torus, RoutingScheme::ItbRr, Scheduler::ActiveSet);
    let (s_par, d_par, n_par) = run_once(
        torus,
        RoutingScheme::ItbRr,
        Scheduler::Parallel { threads: 4 },
    );
    std::env::remove_var("REGNET_PAR_WORKERS");
    assert_eq!(s_active, s_par, "RunStats diverged with forced workers");
    assert_eq!(
        (d_active, n_active),
        (d_par, n_par),
        "trace digest diverged with forced workers"
    );
}
