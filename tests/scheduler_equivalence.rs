//! Scheduler equivalence suite: the active-set cycle loop must be
//! bit-identical to the full-scan reference — same `RunStats`, same
//! unified counters, same delivered-message trace digest — on every
//! paper topology × routing scheme, with and without faults, and the
//! exported Chrome trace must match byte for byte.
//!
//! The scan loop stays in the tree precisely so this suite has a ground
//! truth to diff against; see `DESIGN.md` §4e.

use regnet::prelude::*;

fn opts(scheduler: Scheduler) -> RunOptions {
    RunOptions {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
        seed: 42,
        trace: TraceOptions::digest_only(),
        counters: true,
        scheduler,
        ..RunOptions::default()
    }
}

fn cfg() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

fn run_once(
    build: fn() -> Topology,
    scheme: RoutingScheme,
    scheduler: Scheduler,
) -> (RunStats, u64, u64) {
    let exp = Experiment::new(
        build(),
        scheme,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        cfg(),
    )
    .unwrap();
    let (stats, trace) = exp.run_traced(0.01, &opts(scheduler));
    let trace = trace.expect("digest observer was enabled");
    (
        stats,
        trace.digest.expect("digest recorded"),
        trace.digest_events,
    )
}

fn assert_equivalent(build: fn() -> Topology, scheme: RoutingScheme) {
    let (s_scan, d_scan, n_scan) = run_once(build, scheme, Scheduler::Scan);
    let (s_active, d_active, n_active) = run_once(build, scheme, Scheduler::ActiveSet);
    let name = build().name().to_string();
    assert_eq!(
        s_scan.counters, s_active.counters,
        "counter snapshots diverged between schedulers ({name} {scheme:?})"
    );
    assert_eq!(
        s_scan, s_active,
        "RunStats diverged between schedulers ({name} {scheme:?})"
    );
    assert_eq!(
        (d_scan, n_scan),
        (d_active, n_active),
        "trace digest diverged between schedulers ({name} {scheme:?})"
    );
    assert!(n_scan > 0, "expected deliveries during the window");
    assert!(
        s_scan
            .counters
            .as_ref()
            .is_some_and(|c| c.total_events() > 0),
        "the equivalence must cover real traffic"
    );
}

fn torus() -> Topology {
    gen::torus_2d(8, 8, 8).unwrap()
}

fn express() -> Topology {
    gen::torus_2d_express(8, 8, 8).unwrap()
}

fn cplant() -> Topology {
    gen::cplant().unwrap()
}

#[test]
fn torus_updown_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::UpDown);
}

#[test]
fn torus_itb_sp_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::ItbSp);
}

#[test]
fn torus_itb_rr_schedulers_agree() {
    assert_equivalent(torus, RoutingScheme::ItbRr);
}

#[test]
fn express_updown_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::UpDown);
}

#[test]
fn express_itb_sp_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::ItbSp);
}

#[test]
fn express_itb_rr_schedulers_agree() {
    assert_equivalent(express, RoutingScheme::ItbRr);
}

#[test]
fn cplant_updown_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::UpDown);
}

#[test]
fn cplant_itb_sp_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::ItbSp);
}

#[test]
fn cplant_itb_rr_schedulers_agree() {
    assert_equivalent(cplant, RoutingScheme::ItbRr);
}

/// Faults exercise the phase-0 control path (purge GO symbols delivered
/// the same cycle) and the retransmission wake-ups; the schedulers must
/// agree there too.
#[test]
fn faulted_run_schedulers_agree() {
    let run = |scheduler: Scheduler| {
        let topo = torus();
        let link = topo
            .links()
            .iter()
            .find(|l| l.is_switch_link())
            .expect("switch link")
            .id;
        let mut plan = FaultPlan::single_link(link, 4_000);
        plan.repair_link(9_000, link);
        let exp = Experiment::new(
            topo,
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(),
        )
        .unwrap();
        let run_opts = RunOptions {
            faults: Some(FaultOptions::with_plan(plan)),
            ..opts(scheduler)
        };
        exp.run_reliability(0.01, &run_opts)
    };
    let (s_scan, r_scan, t_scan) = run(Scheduler::Scan);
    let (s_active, r_active, t_active) = run(Scheduler::ActiveSet);
    assert_eq!(s_scan, s_active, "RunStats diverged under faults");
    assert_eq!(r_scan, r_active, "ReliabilityStats diverged under faults");
    let (t_scan, t_active) = (t_scan.unwrap(), t_active.unwrap());
    assert_eq!(
        (t_scan.digest, t_scan.digest_events),
        (t_active.digest, t_active.digest_events),
        "trace digest diverged under faults"
    );
    assert!(
        r_scan.link_failures == 1 && r_scan.repairs == 1,
        "the plan must have fired: {r_scan:?}"
    );
}

/// The full observability stack — event journal exported as a Chrome
/// trace — must come out byte-identical under either scheduler.
#[test]
fn chrome_trace_export_schedulers_agree() {
    let run = |scheduler: Scheduler| {
        let exp = Experiment::new(
            gen::torus_2d(4, 4, 4).unwrap(),
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(),
        )
        .unwrap();
        let obs = exp.run_observed(
            0.01,
            &RunOptions {
                events: Some(EventOptions::default()),
                ..opts(scheduler)
            },
        );
        (
            obs.stats,
            obs.journal.expect("journal enabled").to_chrome().to_json(),
        )
    };
    let (s_scan, t_scan) = run(Scheduler::Scan);
    let (s_active, t_active) = run(Scheduler::ActiveSet);
    assert_eq!(s_scan, s_active, "RunStats diverged with observers on");
    assert_eq!(t_scan, t_active, "Chrome trace export diverged");
    assert!(!t_scan.is_empty());
}
