//! Property-based tests of the shard partitioner behind the parallel
//! cycle engine: on random irregular topologies and arbitrary requested
//! shard counts, the plan must cover every component exactly once, keep
//! the shards balanced, and only ever put the pipelined (delay ≥ 1)
//! switch↔switch links across a shard boundary — the lookahead the
//! engine's two-region barrier design depends on (`DESIGN.md` §4f).

use proptest::prelude::*;

use regnet::netsim::ShardPlan;
use regnet::prelude::*;
use regnet::topology::LinkEnd;

fn arb_setup() -> impl Strategy<Value = (Topology, usize)> {
    ((4usize..24, 2usize..4, 1usize..3, 0u64..1000), 1usize..9).prop_map(
        |((n, deg, hosts, tseed), shards)| {
            (
                gen::irregular_random(n, deg, hosts, tseed).expect("topology"),
                shards,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every switch and every NIC lands in exactly one shard, and every
    /// shard is non-empty.
    #[test]
    fn every_component_in_exactly_one_shard((topo, shards) in arb_setup()) {
        let plan = ShardPlan::new(&topo, shards);
        prop_assert!(plan.n_shards() >= 1);
        prop_assert!(plan.n_shards() <= shards);
        prop_assert!(plan.n_shards() <= topo.num_switches());
        let mut seen = vec![0usize; plan.n_shards()];
        for sw in 0..topo.num_switches() {
            let s = plan.switch_shard(sw);
            prop_assert!(s < plan.n_shards(), "switch {sw} in out-of-range shard {s}");
            seen[s] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c > 0), "empty shard: {seen:?}");
        prop_assert_eq!(seen.iter().sum::<usize>(), topo.num_switches());
        prop_assert_eq!(&seen, &plan.switch_counts());
        for h in topo.hosts() {
            let s = plan.nic_shard(h.idx());
            prop_assert!(s < plan.n_shards());
            // NICs follow their host switch, so NIC↔switch channels are
            // intra-shard by construction.
            prop_assert_eq!(s, plan.switch_shard(topo.host_switch(h).idx()));
        }
    }

    /// Shard switch counts are balanced within a factor of two (contiguous
    /// BFS blocks differ by at most one switch).
    #[test]
    fn shards_balanced_within_factor_two((topo, shards) in arb_setup()) {
        let plan = ShardPlan::new(&topo, shards);
        let counts = plan.switch_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "blocks must differ by at most one: {counts:?}");
        prop_assert!(max <= 2 * min, "balance factor exceeded: {counts:?}");
    }

    /// Every channel that can cross a shard boundary is a switch↔switch
    /// link, and every channel in the simulator carries at least one cycle
    /// of delay — the conservative lookahead that lets one shard read
    /// another's previous-cycle output without synchronization.
    #[test]
    fn cross_shard_channels_have_lookahead((topo, shards) in arb_setup()) {
        let plan = ShardPlan::new(&topo, shards);
        let cfg = SimConfig::default();
        prop_assert!(cfg.link_delay_cycles >= 1, "channels must be pipelined");
        for link in topo.links() {
            let shard_of = |end: &LinkEnd| match *end {
                LinkEnd::Switch { sw, .. } => plan.switch_shard(sw.idx()),
                LinkEnd::Host { host } => plan.nic_shard(host.idx()),
            };
            let (a, b) = (shard_of(&link.ends[0]), shard_of(&link.ends[1]));
            if a != b {
                prop_assert!(
                    link.is_switch_link(),
                    "only switch links may cross shards, link {:?} does not",
                    link.id
                );
            }
        }
    }
}
