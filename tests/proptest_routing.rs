//! Property-based tests over random topologies: the routing invariants
//! that make the ITB mechanism deadlock-free must hold on *any* connected
//! network, not just the paper's three.

use proptest::prelude::*;

use regnet::core::{split_minimal_path, ItbHostPicker, RouteDb, RouteDbConfig, RoutingScheme};
use regnet::prelude::*;
use regnet::routing::minimal;

/// Strategy: a random connected irregular topology.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (4usize..20, 2usize..5, 1usize..4, any::<u64>()).prop_map(|(n, deg, hosts, seed)| {
        gen::irregular_random(n, deg, hosts, seed).expect("irregular generator")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The up-direction graph of any orientation is acyclic — the property
    /// that makes up*/down* deadlock-free.
    #[test]
    fn orientation_up_graph_is_acyclic(topo in arb_topology(), root_pick in any::<u32>()) {
        let root = SwitchId(root_pick % topo.num_switches() as u32);
        let orient = Orientation::compute(&topo, root);
        // Kahn's algorithm over "down end -> up end" edges.
        let n = topo.num_switches();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for link in topo.links() {
            if let Some((a, b)) = link.switch_ends() {
                let up = orient.up_end(a, b);
                let down = if up == a { b } else { a };
                adj[down.idx()].push(up.idx());
                indeg[up.idx()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut removed = 0;
        while let Some(u) = queue.pop() {
            removed += 1;
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        prop_assert_eq!(removed, n);
    }

    /// Every pair is reachable by a legal up*/down* path, and the legal
    /// distance is sandwiched between the graph distance and the
    /// through-the-root tree distance.
    #[test]
    fn legal_distances_are_sound(topo in arb_topology()) {
        let orient = Orientation::compute(&topo, SwitchId(0));
        let dm = DistanceMatrix::compute(&topo);
        for d in topo.switches() {
            let legal = LegalDistances::to_dest(&topo, &orient, d);
            for s in topo.switches() {
                let l = legal.from(s);
                prop_assert!(l != u16::MAX, "{} cannot reach {} legally", s, d);
                prop_assert!(l >= dm.get(s, d));
                prop_assert!(l as u32 <= orient.level(s) + orient.level(d));
            }
        }
    }

    /// Splitting any minimal path yields segments that are each legal
    /// up*/down* paths, preserve total length, and put every in-transit
    /// host on the right switch.
    #[test]
    fn split_segments_are_legal_and_minimal(topo in arb_topology(), seed in any::<u64>()) {
        let orient = Orientation::compute(&topo, SwitchId(0));
        let dm = DistanceMatrix::compute(&topo);
        let n = topo.num_switches() as u32;
        let src = SwitchId(seed as u32 % n);
        let dst = SwitchId((seed >> 16) as u32 % n);
        for path in minimal::k_minimal_paths(&topo, &dm, src, dst, 5, seed) {
            let t = split_minimal_path(&topo, &orient, &path, ItbHostPicker::Spread);
            prop_assert_eq!(t.total_links(), dm.get(src, dst) as usize);
            for seg in &t.segments {
                let p = SwitchPath::new(seg.switches.clone());
                prop_assert!(p.is_legal(&orient), "illegal segment {}", p);
                prop_assert!(p.is_connected(&topo));
                if let SegmentEnd::Itb(h) = seg.end {
                    prop_assert_eq!(topo.host_switch(h), p.dst());
                }
            }
        }
    }

    /// Route databases materialise valid journeys for every host pair on
    /// any topology, under every scheme.
    #[test]
    fn route_db_materialises_valid_journeys(topo in arb_topology(), scheme_pick in 0u8..3) {
        let scheme = RoutingScheme::all()[scheme_pick as usize];
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let mut sel = db.selector();
        let hosts: Vec<HostId> = topo.hosts().collect();
        // Sample pairs rather than the full quadratic set.
        for (i, &src) in hosts.iter().enumerate() {
            let dst = hosts[(i * 7 + 3) % hosts.len()];
            if src == dst {
                continue;
            }
            let j = db.select(&topo, src, dst, &mut sel);
            prop_assert!(j.validate().is_ok(), "{:?}", j.validate());
            prop_assert_eq!(j.src, src);
            prop_assert_eq!(j.dst, dst);
            // The final port byte must address the destination host.
            let last_seg = j.segments.last().unwrap();
            prop_assert_eq!(*last_seg.ports.last().unwrap(), topo.host_port(dst));
            // Journey switches must chain across segments.
            for w in j.segments.windows(2) {
                prop_assert_eq!(
                    *w[0].switches.last().unwrap(),
                    w[1].switches[0],
                    "segments must hand over at the same switch"
                );
            }
        }
    }

    /// up*/down* routes never need in-transit buffers; ITB routes are
    /// always graph-minimal.
    #[test]
    fn scheme_level_invariants(topo in arb_topology()) {
        let dm = DistanceMatrix::compute(&topo);
        let ud = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        for (_, _, alts) in ud.iter_pairs() {
            for t in alts {
                prop_assert_eq!(t.num_itbs(), 0);
            }
        }
        let rr = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        for (s, d, alts) in rr.iter_pairs() {
            for t in alts {
                prop_assert_eq!(t.total_links(), dm.get(s, d) as usize);
            }
        }
    }
}
