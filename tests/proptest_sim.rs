//! Property-based tests of the simulator: on random topologies, random
//! loads and random packet sizes, the network must deliver every generated
//! message (no loss, no deadlock), never exceed capacity, and respect
//! basic latency sanity bounds.

use proptest::prelude::*;

use regnet::prelude::*;

fn arb_setup() -> impl Strategy<Value = (Topology, RoutingScheme, usize, f64, u64)> {
    (
        (4usize..12, 2usize..4, 1usize..3, 0u64..1000),
        0u8..3,
        prop::sample::select(vec![32usize, 64, 128]),
        0.002f64..0.05,
        any::<u64>(),
    )
        .prop_map(|((n, deg, hosts, tseed), scheme, payload, load, seed)| {
            (
                gen::irregular_random(n, deg, hosts, tseed).expect("topology"),
                RoutingScheme::all()[scheme as usize],
                payload,
                load,
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: run, stop generation, drain; generated == delivered.
    #[test]
    fn random_networks_conserve_messages((topo, scheme, payload, load, seed) in arb_setup()) {
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = SimConfig { payload_flits: payload, ..SimConfig::default() };
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, load, seed);
        sim.begin_measurement();
        sim.run(25_000);
        sim.stop_generation();
        let mut guard = 0;
        while sim.packets_in_flight() > 0 {
            sim.run(2_000);
            guard += 1;
            prop_assert!(guard < 1_000, "drain failed:\n{}", sim.dump_state());
        }
        let stats = sim.end_measurement(25_000);
        prop_assert_eq!(stats.delivered, stats.generated);
    }

    /// Accepted traffic can never exceed offered traffic (up to the
    /// granularity of message boundaries) nor the bisection-ish capacity.
    #[test]
    fn accepted_bounded_by_offered((topo, scheme, payload, load, seed) in arb_setup()) {
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = SimConfig { payload_flits: payload, ..SimConfig::default() };
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, load, seed);
        sim.run(10_000);
        sim.begin_measurement();
        sim.run(40_000);
        let stats = sim.end_measurement(40_000);
        let accepted = stats.accepted_flits_per_ns_per_switch(topo.num_switches());
        // 10% slack for message-boundary effects over a finite window.
        prop_assert!(
            accepted <= load * 1.10 + 1e-4,
            "accepted {accepted} exceeds offered {load}"
        );
    }

    /// Latency sanity: mean network latency is at least the time to clock
    /// the packet's own flits out of the NIC, and positive whenever
    /// anything was delivered.
    #[test]
    fn latency_floor_holds((topo, scheme, payload, _load, seed) in arb_setup()) {
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = SimConfig { payload_flits: payload, ..SimConfig::default() };
        // Low fixed load for a clean zero-load estimate.
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.003, seed);
        sim.run(5_000);
        sim.begin_measurement();
        sim.run(60_000);
        let stats = sim.end_measurement(60_000);
        if stats.delivered > 0 {
            // Tail cannot arrive before the payload has been clocked out:
            // payload flits * 6.25 ns each.
            let floor = payload as f64 * 6.25;
            prop_assert!(
                stats.avg_latency_ns >= floor,
                "latency {} below serialization floor {}",
                stats.avg_latency_ns,
                floor
            );
            prop_assert!(stats.p99_latency_ns >= stats.avg_latency_ns * 0.5);
        }
    }
}
