//! Golden-file regression test for the Chrome `trace_event` exporter.
//!
//! A tiny seeded run on the 2×2 torus under ITB-SP is exported as Chrome
//! trace JSON and compared byte-for-byte against the committed golden file
//! (`tests/golden/trace_tiny_torus.json`). The export is a pure function
//! of the run, and the run is a pure function of the seed, so any byte
//! drift means either the simulator's event stream or the exporter's
//! encoding changed — both worth a deliberate re-bless.
//!
//! Regenerate with: `REGNET_BLESS=1 cargo test --test trace_golden`.
//!
//! A second test validates the trace against the `trace_event` schema with
//! the in-repo JSON parser (no external tooling): every event carries
//! `name`/`ph`/`ts`/`pid`/`tid`, phases are from the known set, and the
//! packet-journey flows (`s`/`t`/`f`) are present — including the `t` flow
//! steps that mark ITB hops.

use regnet::metrics::json::JsonValue;
use regnet::prelude::*;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/trace_tiny_torus.json"
);

/// One fixed tiny run: everything about it (topology, scheme, load, seed,
/// windows) is part of the golden file's identity.
fn tiny_traced_run() -> RunObservation {
    let topo = gen::torus_2d(2, 2, 2).unwrap();
    let exp = Experiment::new(
        topo,
        RoutingScheme::ItbSp,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        SimConfig {
            payload_flits: 16,
            ..SimConfig::default()
        },
    )
    .unwrap();
    exp.run_observed(
        0.02,
        &RunOptions {
            warmup_cycles: 0,
            measure_cycles: 2_000,
            seed: 7,
            counters: true,
            events: Some(EventOptions::default()),
            ..RunOptions::default()
        },
    )
}

fn trace_json() -> String {
    let obs = tiny_traced_run();
    let journal = obs.journal.expect("journal was enabled");
    assert!(!journal.is_empty(), "the tiny run must record events");
    assert_eq!(
        journal.evicted(),
        0,
        "the golden run must fit in the ring buffer"
    );
    journal.to_chrome().to_json()
}

#[test]
fn chrome_trace_matches_golden_file() {
    let json = trace_json();
    if std::env::var_os("REGNET_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
        std::fs::write(GOLDEN, &json).unwrap();
        eprintln!("blessed {GOLDEN} ({} bytes)", json.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; run REGNET_BLESS=1 cargo test --test trace_golden");
    assert_eq!(
        json, golden,
        "Chrome trace drifted from the golden file; if the change is \
         intentional re-bless with REGNET_BLESS=1"
    );
}

#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let json = trace_json();
    let root = JsonValue::parse(&json).expect("exporter must emit valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut phases_seen = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        assert!(
            ["M", "i", "X", "b", "e", "s", "t", "f"].contains(&ph),
            "unknown phase {ph:?}"
        );
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        assert!(ev.get("pid").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("tid").and_then(|v| v.as_f64()).is_some());
        if ph != "M" {
            let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
            assert!(ts >= 0.0);
        }
        if ["b", "e", "s", "t", "f"].contains(&ph) {
            assert!(
                ev.get("id").and_then(|v| v.as_str()).is_some(),
                "journey events need a correlation id"
            );
        }
        phases_seen.insert(ph.to_string());
    }
    // The journey layer must actually be exercised: flow start/step/finish
    // (the `t` steps are the ITB hops) and the async journey spans.
    for required in ["M", "i", "s", "t", "f", "b", "e"] {
        assert!(
            phases_seen.contains(required),
            "expected at least one {required:?} event, saw {phases_seen:?}"
        );
    }
    // Timestamps are monotone per track? Not guaranteed by the format —
    // but instants within one thread are emitted in simulation order.
    let counters = tiny_traced_run().stats.counters.expect("counters enabled");
    assert!(
        counters.itb_ejections > 0,
        "the golden scenario must route through ITBs: {counters:?}"
    );
}
