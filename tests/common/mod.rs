//! Shared cross-scheduler equivalence harness.
//!
//! Every cycle-loop driver the simulator offers registers here once, in
//! [`contenders`], and every equivalence suite — the topology × scheme
//! matrix, the faulted runs, the Chrome-trace export, the time-skip
//! property tests — iterates that single list. Adding a fifth scheduler
//! means adding one line here; the whole proof obligation (same
//! `RunStats`, same unified counters, same delivered-message digest,
//! same Chrome trace, with and without faults) then applies to it
//! automatically.
//!
//! The scan loop stays in the tree precisely so these suites have a
//! ground truth to diff against; see `DESIGN.md` §4e.

#![allow(dead_code)]

use regnet::prelude::*;

/// The ground-truth driver every contender is diffed against.
pub fn reference() -> Scheduler {
    Scheduler::Scan
}

/// Every non-reference cycle-loop driver. The parallel engine is checked
/// at shard counts 1, 2 and 4 (executor-count-invariant by construction;
/// see `DESIGN.md` §4f), the event-driven driver exercises time skipping
/// (`DESIGN.md` §4g).
pub fn contenders() -> Vec<Scheduler> {
    vec![
        Scheduler::ActiveSet,
        Scheduler::EventDriven,
        Scheduler::Parallel { threads: 1 },
        Scheduler::Parallel { threads: 2 },
        Scheduler::Parallel { threads: 4 },
    ]
}

pub fn opts(scheduler: Scheduler) -> RunOptions {
    RunOptions {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
        seed: 42,
        trace: TraceOptions::digest_only(),
        counters: true,
        scheduler,
        ..RunOptions::default()
    }
}

pub fn cfg() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

pub fn torus() -> Topology {
    gen::torus_2d(8, 8, 8).unwrap()
}

pub fn express() -> Topology {
    gen::torus_2d_express(8, 8, 8).unwrap()
}

pub fn cplant() -> Topology {
    gen::cplant().unwrap()
}

/// One measured run: stats plus the delivered-message trace digest.
pub fn run_once(
    build: fn() -> Topology,
    scheme: RoutingScheme,
    scheduler: Scheduler,
) -> (RunStats, u64, u64) {
    let exp = Experiment::new(
        build(),
        scheme,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        cfg(),
    )
    .unwrap();
    let (stats, trace) = exp.run_traced(0.01, &opts(scheduler));
    let trace = trace.expect("digest observer was enabled");
    (
        stats,
        trace.digest.expect("digest recorded"),
        trace.digest_events,
    )
}

/// The core obligation: every contender must be bit-identical to the
/// scan reference on this topology × scheme point.
pub fn assert_equivalent(build: fn() -> Topology, scheme: RoutingScheme) {
    let (s_scan, d_scan, n_scan) = run_once(build, scheme, reference());
    let name = build().name().to_string();
    for sched in contenders() {
        let (s_other, d_other, n_other) = run_once(build, scheme, sched);
        assert_eq!(
            s_scan.counters, s_other.counters,
            "counter snapshots diverged between schedulers ({name} {scheme:?} {sched:?})"
        );
        assert_eq!(
            s_scan, s_other,
            "RunStats diverged between schedulers ({name} {scheme:?} {sched:?})"
        );
        assert_eq!(
            (d_scan, n_scan),
            (d_other, n_other),
            "trace digest diverged between schedulers ({name} {scheme:?} {sched:?})"
        );
    }
    assert!(n_scan > 0, "expected deliveries during the window");
    assert!(
        s_scan
            .counters
            .as_ref()
            .is_some_and(|c| c.total_events() > 0),
        "the equivalence must cover real traffic"
    );
}

/// Faulted-run obligation: a single link fails and is repaired, and
/// every contender — including every `Parallel` shard count, which runs
/// the real sharded engine with purges replayed at the epoch barrier
/// (`DESIGN.md` §4f) — must agree on `RunStats`, the unified counter
/// snapshot, `ReliabilityStats` and the delivered-message digest, bit
/// for bit.
pub fn assert_equivalent_faulted(build: fn() -> Topology, scheme: RoutingScheme) {
    assert_equivalent_faulted_with(build, scheme, cfg());
}

/// [`assert_equivalent_faulted`] with a caller-supplied `SimConfig`, so
/// suites can e.g. shrink `reconfig_latency_cycles` to force a full
/// reconfiguration inside the measurement window.
pub fn assert_equivalent_faulted_with(
    build: fn() -> Topology,
    scheme: RoutingScheme,
    config: SimConfig,
) -> ReliabilityStats {
    let run = |scheduler: Scheduler| {
        let topo = build();
        let link = topo
            .links()
            .iter()
            .find(|l| l.is_switch_link())
            .expect("switch link")
            .id;
        let mut plan = FaultPlan::single_link(link, 4_000);
        plan.repair_link(9_000, link);
        let exp = Experiment::new(
            topo,
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            config.clone(),
        )
        .unwrap();
        let run_opts = RunOptions {
            faults: Some(FaultOptions::with_plan(plan)),
            ..opts(scheduler)
        };
        exp.run_reliability(0.01, &run_opts)
    };
    let (s_scan, r_scan, t_scan) = run(reference());
    let t_scan = t_scan.unwrap();
    for sched in contenders() {
        let (s_other, r_other, t_other) = run(sched);
        assert_eq!(
            s_scan.counters, s_other.counters,
            "counter snapshots diverged under faults ({sched:?})"
        );
        assert_eq!(
            s_scan, s_other,
            "RunStats diverged under faults ({sched:?})"
        );
        assert_eq!(
            r_scan, r_other,
            "ReliabilityStats diverged under faults ({sched:?})"
        );
        let t_other = t_other.unwrap();
        assert_eq!(
            (t_scan.digest, t_scan.digest_events),
            (t_other.digest, t_other.digest_events),
            "trace digest diverged under faults ({sched:?})"
        );
    }
    assert!(
        r_scan.link_failures == 1 && r_scan.repairs == 1,
        "the plan must have fired: {r_scan:?}"
    );
    assert!(
        s_scan
            .counters
            .as_ref()
            .is_some_and(|c| c.total_events() > 0),
        "the faulted equivalence must cover real traffic"
    );
    r_scan
}

/// Full-observer obligation: the event journal exported as a Chrome
/// trace must come out byte-identical under every contender.
pub fn assert_equivalent_observed(build: fn() -> Topology, scheme: RoutingScheme) {
    let run = |scheduler: Scheduler| {
        let exp = Experiment::new(
            build(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(),
        )
        .unwrap();
        let obs = exp.run_observed(
            0.01,
            &RunOptions {
                events: Some(EventOptions::default()),
                ..opts(scheduler)
            },
        );
        (
            obs.stats,
            obs.journal.expect("journal enabled").to_chrome().to_json(),
        )
    };
    let (s_scan, t_scan) = run(reference());
    for sched in contenders() {
        let (s_other, t_other) = run(sched);
        assert_eq!(
            s_scan, s_other,
            "RunStats diverged with observers on ({sched:?})"
        );
        assert_eq!(t_scan, t_other, "Chrome trace export diverged ({sched:?})");
    }
    assert!(!t_scan.is_empty());
}
