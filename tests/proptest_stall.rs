//! Property tests of the wait-for-graph stall classifier: with *legal*
//! route sets (everything `RouteDb::build` produces) the analyzer must
//! never report a cyclic channel dependency — on any topology, scheme or
//! load — and a drained network is always classified as idle.

use proptest::prelude::*;

use regnet::prelude::*;

fn arb_setup() -> impl Strategy<Value = (Topology, RoutingScheme, f64, u64)> {
    (
        (4usize..10, 2usize..4, 1usize..3, 0u64..500),
        0u8..3,
        0.01f64..0.2,
        any::<u64>(),
    )
        .prop_map(|((n, deg, hosts, tseed), scheme, load, seed)| {
            (
                gen::irregular_random(n, deg, hosts, tseed).expect("topology"),
                RoutingScheme::all()[scheme as usize],
                load,
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn legal_routes_never_classified_as_deadlock(
        (topo, scheme, load, seed) in arb_setup()
    ) {
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = SimConfig { payload_flits: 64, ..SimConfig::default() };
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, load, seed);
        sim.run(15_000);
        let mid = sim.analyze_stall();
        prop_assert!(!mid.is_deadlock(), "mid-run: {}", mid.summary);
        sim.stop_generation();
        let mut guard = 0;
        while sim.packets_in_flight() > 0 {
            sim.run(2_000);
            guard += 1;
            prop_assert!(guard < 1_000, "drain failed:\n{}", sim.dump_state());
        }
        let idle = sim.analyze_stall();
        prop_assert!(
            matches!(idle.class, StallClass::Idle),
            "drained network misclassified: {}",
            idle.summary
        );
    }
}
