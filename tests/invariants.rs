//! Cross-crate invariant tests: conservation (everything generated is
//! delivered), determinism, and deadlock freedom across topologies,
//! schemes and traffic patterns.

use regnet::prelude::*;

fn cfg(payload: usize) -> SimConfig {
    SimConfig {
        payload_flits: payload,
        ..SimConfig::default()
    }
}

/// Run, stop generation, drain; every generated packet must be delivered
/// (no loss, no deadlock) and the drain must terminate.
fn assert_conservation(topo: Topology, scheme: RoutingScheme, pattern: PatternSpec, load: f64) {
    let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
    let pattern = Pattern::resolve(pattern, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg(64), load, 99);
    sim.begin_measurement();
    sim.run(40_000);
    sim.stop_generation();
    let mut guard = 0;
    while sim.packets_in_flight() > 0 {
        sim.run(2_000);
        guard += 1;
        assert!(
            guard < 2_000,
            "network failed to drain under {} on {}:\n{}",
            scheme.label(),
            topo.name(),
            sim.dump_state()
        );
    }
    let stats = sim.end_measurement(40_000);
    assert!(stats.generated > 50, "too few messages to be meaningful");
    assert_eq!(
        stats.delivered,
        stats.generated,
        "{} on {}: {} generated but {} delivered",
        scheme.label(),
        topo.name(),
        stats.generated,
        stats.delivered
    );
}

#[test]
fn conservation_torus_all_schemes() {
    for scheme in RoutingScheme::all() {
        assert_conservation(
            gen::torus_2d(4, 4, 2).unwrap(),
            scheme,
            PatternSpec::Uniform,
            0.01,
        );
    }
}

#[test]
fn conservation_express_all_schemes() {
    for scheme in RoutingScheme::all() {
        assert_conservation(
            gen::torus_2d_express(4, 4, 2).unwrap(),
            scheme,
            PatternSpec::Uniform,
            0.02,
        );
    }
}

#[test]
fn conservation_cplant_all_schemes() {
    for scheme in RoutingScheme::all() {
        assert_conservation(gen::cplant().unwrap(), scheme, PatternSpec::Uniform, 0.008);
    }
}

#[test]
fn conservation_under_overload() {
    // Far beyond saturation: sources stall, but nothing in flight is ever
    // lost and the drain still terminates.
    assert_conservation(
        gen::torus_2d(4, 4, 2).unwrap(),
        RoutingScheme::ItbRr,
        PatternSpec::Uniform,
        0.25,
    );
}

#[test]
fn conservation_hotspot_and_local() {
    assert_conservation(
        gen::torus_2d(4, 4, 2).unwrap(),
        RoutingScheme::ItbRr,
        PatternSpec::Hotspot {
            fraction: 0.2,
            host: HostId(9),
        },
        0.01,
    );
    assert_conservation(
        gen::torus_2d(4, 4, 2).unwrap(),
        RoutingScheme::ItbSp,
        PatternSpec::Local { max_switch_dist: 2 },
        0.03,
    );
}

#[test]
fn conservation_bit_reversal_with_silent_hosts() {
    // 4x4x4 = 64 hosts: 6-bit ids, 2^3 palindromic silent hosts.
    assert_conservation(
        gen::torus_2d(4, 4, 4).unwrap(),
        RoutingScheme::ItbRr,
        PatternSpec::BitReversal,
        0.01,
    );
}

#[test]
fn conservation_on_irregular_topology() {
    // The mechanism is "valid for any network with source routing"
    // (paper, conclusions) — exercise an irregular one.
    for seed in [1, 2, 3] {
        assert_conservation(
            gen::irregular_random(12, 4, 2, seed).unwrap(),
            RoutingScheme::ItbRr,
            PatternSpec::Uniform,
            0.01,
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let exp = Experiment::new(
            gen::cplant().unwrap(),
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(64),
        )
        .unwrap();
        exp.run_point(
            0.01,
            &RunOptions {
                warmup_cycles: 5_000,
                measure_cycles: 20_000,
                seed: 4,
                ..RunOptions::default()
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.avg_itbs_per_msg, b.avg_itbs_per_msg);
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        Experiment::new(
            gen::torus_2d(4, 4, 2).unwrap(),
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(64),
        )
        .unwrap()
        .run_point(
            0.01,
            &RunOptions {
                warmup_cycles: 5_000,
                measure_cycles: 20_000,
                seed,
                ..RunOptions::default()
            },
        )
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a.delivered, a.avg_latency_ns.to_bits()),
        (b.delivered, b.avg_latency_ns.to_bits())
    );
}

#[test]
fn message_sizes_of_the_paper_all_work() {
    // 32, 512 and 1024-byte messages (section 4.2).
    for payload in [32usize, 512, 1024] {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg(payload), 0.008, 5);
        sim.begin_measurement();
        sim.run(60_000);
        sim.stop_generation();
        let mut guard = 0;
        while sim.packets_in_flight() > 0 {
            sim.run(2_000);
            guard += 1;
            assert!(guard < 1_000, "drain failed for payload {payload}");
        }
        let stats = sim.end_measurement(60_000);
        assert_eq!(stats.delivered, stats.generated, "payload {payload}");
        assert!(
            stats.delivered > 20,
            "payload {payload}: {}",
            stats.delivered
        );
    }
}

#[test]
fn store_and_forward_reinjection_also_conserves() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let cfg = SimConfig {
        payload_flits: 64,
        itb_cut_through: false,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.01, 6);
    sim.begin_measurement();
    sim.run(40_000);
    sim.stop_generation();
    let mut guard = 0;
    while sim.packets_in_flight() > 0 {
        sim.run(2_000);
        guard += 1;
        assert!(guard < 1_000, "SAF drain failed");
    }
    let stats = sim.end_measurement(40_000);
    assert_eq!(stats.delivered, stats.generated);
}

#[test]
fn tiny_itb_pool_overflows_but_never_loses_packets() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let cfg = SimConfig {
        payload_flits: 64,
        itb_pool_flits: 64, // smaller than one packet: everything overflows
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.01, 7);
    sim.begin_measurement();
    sim.run(40_000);
    sim.stop_generation();
    let mut guard = 0;
    while sim.packets_in_flight() > 0 {
        sim.run(2_000);
        guard += 1;
        assert!(guard < 1_000, "overflow drain failed");
    }
    let stats = sim.end_measurement(40_000);
    assert_eq!(stats.delivered, stats.generated);
    assert!(
        stats.itb_overflows > 0,
        "expected host-memory overflows with a 64-flit pool"
    );
}
