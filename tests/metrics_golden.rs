//! Golden-file regression test for the Prometheus text exposition.
//!
//! A tiny seeded run on the 2×2 torus under ITB-SP is projected through
//! [`RunObservation::metrics_registry`] and compared byte-for-byte
//! against the committed golden file
//! (`tests/golden/metrics_tiny_torus.prom`). The registry only carries
//! values the simulation determined (no wall clock), so the exposition is
//! a pure function of the seed: any byte drift means either the simulator
//! or the exposition encoding changed — both worth a deliberate re-bless.
//!
//! Regenerate with: `REGNET_BLESS=1 cargo test --test metrics_golden`.

use regnet::prelude::*;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/metrics_tiny_torus.prom"
);

/// One fixed tiny run with every metrics-relevant observer on.
fn tiny_observed_run() -> RunObservation {
    let topo = gen::torus_2d(2, 2, 2).unwrap();
    let exp = Experiment::new(
        topo,
        RoutingScheme::ItbSp,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        SimConfig {
            payload_flits: 16,
            ..SimConfig::default()
        },
    )
    .unwrap();
    exp.run_observed(
        0.02,
        &RunOptions {
            warmup_cycles: 0,
            measure_cycles: 2_000,
            seed: 7,
            counters: true,
            trace: TraceOptions {
                digest: true,
                packet_lifetimes: true,
                itb_occupancy_interval: Some(250),
                metrics_interval: Some(250),
                ..TraceOptions::default()
            },
            ..RunOptions::default()
        },
    )
}

fn exposition() -> String {
    let obs = tiny_observed_run();
    assert!(obs.stats.delivered > 0, "the tiny run must deliver traffic");
    let reg = obs.metrics_registry();
    assert!(!reg.is_empty());
    reg.to_prometheus()
}

#[test]
fn prometheus_exposition_matches_golden_file() {
    let text = exposition();
    if std::env::var_os("REGNET_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
        std::fs::write(GOLDEN, &text).unwrap();
        eprintln!("blessed {GOLDEN} ({} bytes)", text.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; run REGNET_BLESS=1 cargo test --test metrics_golden");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from the golden file; if the \
         change is intentional re-bless with REGNET_BLESS=1"
    );
}

#[test]
fn exposition_is_well_formed_and_carries_the_counters() {
    let text = exposition();
    let mut families = std::collections::BTreeSet::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "unknown comment line {line:?}"
            );
            if let Some(t) = rest.strip_prefix("TYPE ") {
                let mut parts = t.split(' ');
                families.insert(parts.next().unwrap().to_string());
                assert!(
                    ["counter", "gauge", "summary"]
                        .contains(&parts.next().expect("TYPE has a kind")),
                    "bad TYPE in {line:?}"
                );
            }
        } else {
            // Sample line: name{labels} value — value must parse as f64.
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
        }
    }
    for required in [
        "regnet_events_total",
        "regnet_run_window_cycles",
        "regnet_reliability_total",
        "regnet_digest_events_total",
        "regnet_itb_pool_peak_flits",
        "regnet_packet_lifetime_cycles",
    ] {
        assert!(families.contains(required), "missing family {required}");
    }
    // All 19 event counters must be present as labelled points.
    let events = text
        .lines()
        .filter(|l| l.starts_with("regnet_events_total{"))
        .count();
    assert_eq!(events, CounterSnapshot::NAMES.len());
}

/// The sampler rides the telemetry ticks, so its series — not just the
/// end-of-run stats — must be identical across schedulers.
#[test]
fn metrics_series_is_scheduler_invariant() {
    let run = |scheduler| {
        let topo = gen::torus_2d(2, 2, 2).unwrap();
        let exp = Experiment::new(
            topo,
            RoutingScheme::ItbSp,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            SimConfig {
                payload_flits: 16,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let obs = exp.run_observed(
            0.02,
            &RunOptions {
                warmup_cycles: 0,
                measure_cycles: 2_000,
                seed: 7,
                counters: true,
                scheduler,
                trace: TraceOptions {
                    metrics_interval: Some(100),
                    ..TraceOptions::default()
                },
                ..RunOptions::default()
            },
        );
        obs.trace.expect("trace on").metrics.expect("sampler on")
    };
    let reference = run(Scheduler::ActiveSet);
    assert!(!reference.samples.is_empty());
    for scheduler in [
        Scheduler::Scan,
        Scheduler::EventDriven,
        Scheduler::Parallel { threads: 2 },
    ] {
        assert_eq!(
            reference,
            run(scheduler),
            "metrics series diverged under {scheduler:?}"
        );
    }
}
