//! Integration tests asserting the *shape* of the paper's headline results
//! at reduced scale (shorter messages and windows so the suite stays
//! fast). The full-scale numbers live in EXPERIMENTS.md and are produced
//! by the `regnet-bench` binaries.

use regnet::prelude::*;

fn cfg64() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        warmup_cycles: 15_000,
        measure_cycles: 50_000,
        seed,
        ..RunOptions::default()
    }
}

fn throughput(topo: Topology, scheme: RoutingScheme, pattern: PatternSpec) -> f64 {
    let exp = Experiment::new(topo, scheme, RouteDbConfig::default(), pattern, cfg64()).unwrap();
    exp.find_throughput(
        &ThroughputSearch {
            start: 0.004,
            growth: 1.45,
            saturated_points: 2,
            ratio: 0.92,
            max_points: 14,
        },
        &opts(17),
    )
}

/// Figure 7a's shape: on a 2-D torus under uniform traffic, the ITB
/// schemes clearly outperform UP/DOWN (the paper reports a factor ~2 at
/// full scale).
#[test]
fn torus_uniform_itb_beats_updown() {
    let t_ud = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::UpDown,
        PatternSpec::Uniform,
    );
    let t_rr = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::ItbRr,
        PatternSpec::Uniform,
    );
    assert!(
        t_rr > t_ud * 1.5,
        "ITB-RR {t_rr:.4} should beat UP/DOWN {t_ud:.4} by >1.5x"
    );
}

/// Figure 7b's shape: express channels lift UP/DOWN more than ITB (more
/// alternative paths to the root), so the ITB gain narrows — but ITB
/// still wins.
#[test]
fn express_narrows_but_keeps_itb_gain() {
    let plain_ud = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::UpDown,
        PatternSpec::Uniform,
    );
    let exp_ud = throughput(
        gen::torus_2d_express(8, 8, 2).unwrap(),
        RoutingScheme::UpDown,
        PatternSpec::Uniform,
    );
    let exp_rr = throughput(
        gen::torus_2d_express(8, 8, 2).unwrap(),
        RoutingScheme::ItbRr,
        PatternSpec::Uniform,
    );
    // Express channels help UP/DOWN a lot (paper: x4.6 at full scale).
    assert!(
        exp_ud > plain_ud * 2.0,
        "express UP/DOWN {exp_ud:.4} should be >2x plain {plain_ud:.4}"
    );
    // ITB still ahead, but by less than on the plain torus.
    assert!(
        exp_rr > exp_ud,
        "ITB-RR {exp_rr:.4} should still beat UP/DOWN {exp_ud:.4} with express channels"
    );
}

/// Figure 12's shape: under local traffic the ITB advantage (mostly)
/// evaporates, and ITB never hurts.
#[test]
fn local_traffic_gains_are_small() {
    let pattern = PatternSpec::Local { max_switch_dist: 3 };
    let t_ud = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::UpDown,
        pattern,
    );
    let t_rr = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::ItbRr,
        pattern,
    );
    assert!(
        t_rr > t_ud * 0.9,
        "ITB-RR {t_rr:.4} must not lose to UP/DOWN {t_ud:.4} under local traffic"
    );
    // And local traffic saturates far above uniform traffic for UP/DOWN.
    let t_ud_uniform = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::UpDown,
        PatternSpec::Uniform,
    );
    assert!(
        t_ud > t_ud_uniform * 2.0,
        "local UP/DOWN {t_ud:.4} should be far above uniform {t_ud_uniform:.4}"
    );
}

/// Table 1's shape: a 10% hotspot drags everyone down and compresses the
/// ITB advantage relative to uniform traffic.
#[test]
fn hotspot_compresses_itb_gain() {
    let hotspot = PatternSpec::Hotspot {
        fraction: 0.10,
        host: HostId(77),
    };
    let hs_ud = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::UpDown,
        hotspot,
    );
    let hs_rr = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::ItbRr,
        hotspot,
    );
    let un_ud = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::UpDown,
        PatternSpec::Uniform,
    );
    let un_rr = throughput(
        gen::torus_2d(8, 8, 2).unwrap(),
        RoutingScheme::ItbRr,
        PatternSpec::Uniform,
    );
    // ITB still >= UP/DOWN under the hotspot...
    assert!(
        hs_rr >= hs_ud * 0.95,
        "hotspot: RR {hs_rr:.4} vs UD {hs_ud:.4}"
    );
    // ...but the gain factor shrinks versus uniform traffic.
    let gain_uniform = un_rr / un_ud;
    let gain_hotspot = hs_rr / hs_ud.max(1e-9);
    assert!(
        gain_hotspot < gain_uniform,
        "hotspot gain {gain_hotspot:.2} should be below uniform gain {gain_uniform:.2}"
    );
}

/// Section 4.7.1: latency ordering near zero load — ITB journeys pay a
/// small latency premium for their in-transit hops.
#[test]
fn itb_pays_small_zero_load_latency_premium() {
    let mk = |scheme| {
        Experiment::new(
            gen::torus_2d(8, 8, 2).unwrap(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg64(),
        )
        .unwrap()
        .run_point(0.002, &opts(3))
    };
    let ud = mk(RoutingScheme::UpDown);
    let rr = mk(RoutingScheme::ItbRr);
    assert!(ud.avg_latency_ns > 0.0 && rr.avg_latency_ns > 0.0);
    // The premium exists but is bounded (paper: a few hundred ns on ~5 µs).
    assert!(
        rr.avg_latency_ns < ud.avg_latency_ns * 1.5,
        "ITB zero-load latency {:.0} vs UP/DOWN {:.0}",
        rr.avg_latency_ns,
        ud.avg_latency_ns
    );
    assert!(rr.avg_itbs_per_msg > 0.1, "expected in-transit hops in use");
    assert_eq!(ud.avg_itbs_per_msg, 0.0);
}
