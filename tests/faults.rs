//! Fault-injection integration tests: packet conservation under link,
//! switch and host failures, legality of reconfigured routing tables while
//! traffic is in flight, and equivalence of an empty fault plan with a
//! fault-free run.

use regnet::prelude::*;

fn cfg() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

fn first_switch_link(topo: &Topology) -> LinkId {
    topo.links()
        .iter()
        .find(|l| l.is_switch_link())
        .expect("switch link")
        .id
}

/// The paper's 8x8 torus: with retransmission and online reconfiguration,
/// a single link failure loses nothing — every generated packet is
/// eventually delivered, under every routing scheme. While traffic is
/// still in flight, the rebuilt tables must pass the scheme's legality
/// audit (up*/down* segments on the discovered topology, live physical
/// translation).
#[test]
fn single_link_failure_zero_drops_all_schemes() {
    for scheme in RoutingScheme::all() {
        let topo = gen::torus_2d(8, 8, 8).unwrap();
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg(), 0.02, 21);
        let plan = FaultPlan::single_link(first_switch_link(&topo), 5_000);
        sim.enable_faults(FaultOptions::with_plan(plan));
        sim.begin_measurement();

        // Past the fault (5k) and the reconfiguration latency (16k).
        sim.run(30_000);
        let rel = sim.reliability();
        assert_eq!(rel.link_failures, 1, "{scheme:?}: the fault must fire");
        assert_eq!(
            rel.reconfigurations, 1,
            "{scheme:?}: the rebuild must have been swapped in"
        );
        assert!(
            sim.packets_in_flight() > 0,
            "{scheme:?}: expected live traffic while auditing the tables"
        );
        let routes = sim
            .reconfigured_routes()
            .expect("reconfiguration installed new tables");
        routes
            .verify(&topo, sim.active_faults().unwrap())
            .unwrap_or_else(|e| panic!("{scheme:?}: illegal post-reconfig table: {e}"));
        assert_eq!(routes.lost_hosts(), 0, "a torus survives one link");

        sim.stop_generation();
        assert!(
            sim.run_until_drained(2_000_000).is_some(),
            "{scheme:?}: failed to drain:\n{}",
            sim.dump_state()
        );
        let stats = sim.end_measurement(30_000);
        let rel = sim.reliability();
        assert!(stats.generated > 100, "{scheme:?}: too little traffic");
        assert_eq!(
            stats.delivered, stats.generated,
            "{scheme:?}: lost messages under a single link failure"
        );
        assert_eq!(rel.dropped_packets, 0, "{scheme:?}: {rel:?}");
        assert_eq!(rel.unreachable_drops, 0, "{scheme:?}: {rel:?}");
        assert_eq!(rel.unreachable_pairs, 0, "{scheme:?}: {rel:?}");
    }
}

/// Killing a switch (with its hosts' access cut) and a host outright does
/// lose traffic — but every message is accounted for: delivered plus
/// dropped equals generated, and the drain still terminates.
#[test]
fn switch_and_host_faults_account_for_every_message() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg(), 0.02, 33);
    let mut plan = FaultPlan::new();
    plan.fail_switch(4_000, SwitchId(5))
        .fail_host(6_000, HostId(1))
        .repair_switch(10_000, SwitchId(5));
    sim.enable_faults(FaultOptions::with_plan(plan));
    sim.begin_measurement();
    sim.run(20_000);
    sim.stop_generation();
    assert!(
        sim.run_until_drained(2_000_000).is_some(),
        "failed to drain:\n{}",
        sim.dump_state()
    );
    let stats = sim.end_measurement(20_000);
    let rel = sim.reliability();
    assert_eq!(rel.switch_failures, 1);
    assert_eq!(rel.host_failures, 1);
    assert_eq!(rel.repairs, 1);
    assert!(
        rel.dropped_messages > 0,
        "a dead switch plus a dead host must cost something: {rel:?}"
    );
    assert_eq!(
        stats.delivered + rel.dropped_messages,
        stats.generated,
        "message accounting leak: {stats:?}\n{rel:?}"
    );
}

/// Retransmission without reconfiguration (the ablation): a failed link
/// that is repaired before the retry budget runs out still loses nothing,
/// even though the routing tables are never rebuilt.
#[test]
fn retransmission_alone_survives_a_transient_fault() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg(), 0.02, 5);
    let l = first_switch_link(&topo);
    let mut plan = FaultPlan::single_link(l, 4_000);
    plan.repair_link(9_000, l);
    sim.enable_faults(FaultOptions {
        reconfigure: false,
        ..FaultOptions::with_plan(plan)
    });
    sim.begin_measurement();
    sim.run(20_000);
    sim.stop_generation();
    assert!(
        sim.run_until_drained(2_000_000).is_some(),
        "failed to drain:\n{}",
        sim.dump_state()
    );
    let stats = sim.end_measurement(20_000);
    let rel = sim.reliability();
    assert_eq!(rel.link_failures, 1);
    assert_eq!(rel.repairs, 1);
    assert_eq!(rel.reconfigurations, 0, "reconfiguration was disabled");
    assert_eq!(stats.delivered, stats.generated, "{rel:?}");
    assert_eq!(rel.dropped_packets, 0, "{rel:?}");
}

/// An empty fault plan is free: identical RunStats and trace digest to a
/// run with faults never enabled, and all-zero ReliabilityStats.
#[test]
fn empty_plan_matches_fault_free_run() {
    let opts = RunOptions {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
        seed: 17,
        trace: TraceOptions::digest_only(),
        ..RunOptions::default()
    };
    let exp = || {
        Experiment::new(
            gen::torus_2d(4, 4, 2).unwrap(),
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(),
        )
        .unwrap()
    };
    let (base_stats, base_trace) = exp().run_traced(0.01, &opts);
    let faulted_opts = RunOptions {
        faults: Some(FaultOptions::with_plan(FaultPlan::new())),
        ..opts
    };
    let (stats, rel, trace) = exp().run_reliability(0.01, &faulted_opts);
    assert_eq!(stats, base_stats, "an empty plan changed the run");
    assert_eq!(rel, ReliabilityStats::default());
    assert_eq!(
        trace.unwrap().digest,
        base_trace.unwrap().digest,
        "an empty plan changed the delivery stream"
    );
}
