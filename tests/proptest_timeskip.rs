//! Property tests for event-driven time skipping: on random small
//! topologies × routing schemes × loads × fault plans, the skip target
//! must never overshoot. The proof runs twice — once under
//! `Scheduler::EventDriven` with the skip log armed, once under the
//! tick-every-cycle active set — and checks, via the raw-state oracle
//! `Simulator::cycle_has_pending_work` (independent of the scheduler
//! bookkeeping), that no cycle inside a skipped span had anything to do,
//! and that both runs end in bit-identical results.

use proptest::prelude::*;

use regnet::prelude::*;

const RUN_CYCLES: u64 = 20_000;

fn arb_setup() -> impl Strategy<Value = (Topology, RoutingScheme, usize, f64, u64, bool)> {
    (
        (4usize..10, 2usize..4, 1usize..3, 0u64..500),
        0u8..3,
        prop::sample::select(vec![32usize, 64]),
        // Skewed low so most cases have real idle spans to jump, with a
        // busier tail to exercise the "never skip when work exists" side.
        prop::sample::select(vec![0.0003f64, 0.001, 0.003, 0.01]),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |((n, deg, hosts, tseed), scheme, payload, load, seed, faulty)| {
                (
                    gen::irregular_random(n, deg, hosts, tseed).expect("topology"),
                    RoutingScheme::all()[scheme as usize],
                    payload,
                    load,
                    seed,
                    faulty,
                )
            },
        )
}

/// A single fail+repair plan on the first switch link, when one exists.
fn plan_for(topo: &Topology, faulty: bool) -> Option<FaultPlan> {
    if !faulty {
        return None;
    }
    let link = topo.links().iter().find(|l| l.is_switch_link())?.id;
    let mut plan = FaultPlan::single_link(link, 3_000);
    plan.repair_link(8_000, link);
    Some(plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn skipped_spans_never_overshoot((topo, scheme, payload, load, seed, faulty) in arb_setup()) {
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let mk_cfg = || SimConfig { payload_flits: payload, ..SimConfig::default() };
        let plan = plan_for(&topo, faulty);

        // Event-driven run, skip log armed.
        let mut ev = Simulator::new(&topo, &db, &pattern, mk_cfg(), load, seed);
        ev.set_scheduler(Scheduler::EventDriven);
        if let Some(p) = plan.clone() {
            ev.enable_faults(FaultOptions::with_plan(p));
        }
        ev.enable_skip_log();
        ev.begin_measurement();
        ev.run(RUN_CYCLES);
        let s_ev = ev.end_measurement(RUN_CYCLES);

        // The log is well-formed: strictly forward, disjoint, in order,
        // clamped to the run limit, and sums to the skip counter.
        let log = ev.skip_log().to_vec();
        let mut prev_to = 0u64;
        let mut total = 0u64;
        for &(from, to) in &log {
            prop_assert!(from < to, "degenerate jump ({from}, {to})");
            prop_assert!(from >= prev_to, "jumps out of order at ({from}, {to})");
            prop_assert!(to <= RUN_CYCLES, "jump overshot the run limit");
            prev_to = to;
            total += to - from;
        }
        prop_assert_eq!(total, ev.skipped_cycles());

        // Re-run with skipping disabled: bit-identical results, and the
        // raw-state oracle confirms every skipped cycle really was idle.
        let mut tw = Simulator::new(&topo, &db, &pattern, mk_cfg(), load, seed);
        tw.set_scheduler(Scheduler::ActiveSet);
        if let Some(p) = plan {
            tw.enable_faults(FaultOptions::with_plan(p));
        }
        tw.begin_measurement();
        let mut li = 0usize;
        while tw.cycle() < RUN_CYCLES {
            let c = tw.cycle();
            while li < log.len() && c >= log[li].1 {
                li += 1;
            }
            if li < log.len() && log[li].0 <= c && c < log[li].1 {
                prop_assert!(
                    !tw.cycle_has_pending_work(),
                    "cycle {} was skipped (span {:?}) but had pending work",
                    c,
                    log[li]
                );
            }
            tw.step();
        }
        let s_tw = tw.end_measurement(RUN_CYCLES);
        prop_assert_eq!(s_ev, s_tw, "RunStats diverged from the tick-every-cycle twin");
        prop_assert_eq!(ev.reliability(), tw.reliability());
        prop_assert_eq!(tw.skipped_cycles(), 0, "the active set must never skip");
    }
}
