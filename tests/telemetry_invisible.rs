//! Telemetry must be invisible: on every paper topology × scheme, a run
//! with the full flight-recorder stack on (counters, metrics sampler,
//! occupancy + lifetime probes, digest, self-profiler) produces the same
//! `RunStats` as a bare run with no observers at all, and the same
//! delivered-message digest as a digest-only run.

mod common;

use common::{cfg, opts, reference};
use regnet::prelude::*;

fn assert_telemetry_invisible(build: fn() -> Topology, scheme: RoutingScheme) {
    let run = |trace: TraceOptions, counters: bool, profile: bool| {
        let exp = Experiment::new(
            build(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg(),
        )
        .unwrap();
        let obs = exp.run_observed(
            0.01,
            &RunOptions {
                trace,
                counters,
                profile,
                ..opts(reference())
            },
        );
        let mut stats = obs.stats;
        stats.counters = None;
        (stats, obs.trace.and_then(|t| t.digest))
    };
    let (bare, no_digest) = run(TraceOptions::default(), false, false);
    assert_eq!(no_digest, None);
    let (minimal, digest) = run(TraceOptions::digest_only(), false, false);
    let full = TraceOptions {
        digest: true,
        packet_lifetimes: true,
        itb_occupancy_interval: Some(500),
        metrics_interval: Some(250),
        goodput_interval: Some(1_000),
        channel_util_interval: Some(1_000),
    };
    let (observed, observed_digest) = run(full, true, true);
    assert_eq!(bare, minimal, "the digest observer perturbed the run");
    assert_eq!(bare, observed, "the flight recorder perturbed the run");
    assert!(digest.is_some());
    assert_eq!(digest, observed_digest, "telemetry changed the digest");
}

#[test]
fn torus_up_down() {
    assert_telemetry_invisible(common::torus, RoutingScheme::UpDown);
}

#[test]
fn torus_itb_sp() {
    assert_telemetry_invisible(common::torus, RoutingScheme::ItbSp);
}

#[test]
fn torus_itb_rr() {
    assert_telemetry_invisible(common::torus, RoutingScheme::ItbRr);
}

#[test]
fn express_up_down() {
    assert_telemetry_invisible(common::express, RoutingScheme::UpDown);
}

#[test]
fn express_itb_sp() {
    assert_telemetry_invisible(common::express, RoutingScheme::ItbSp);
}

#[test]
fn express_itb_rr() {
    assert_telemetry_invisible(common::express, RoutingScheme::ItbRr);
}

#[test]
fn cplant_up_down() {
    assert_telemetry_invisible(common::cplant, RoutingScheme::UpDown);
}

#[test]
fn cplant_itb_sp() {
    assert_telemetry_invisible(common::cplant, RoutingScheme::ItbSp);
}

#[test]
fn cplant_itb_rr() {
    assert_telemetry_invisible(common::cplant, RoutingScheme::ItbRr);
}
