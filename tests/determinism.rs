//! Determinism regression suite: a run is a pure function of
//! (topology, routing scheme, pattern, config, seed). Re-running with the
//! same seed must reproduce the measurement statistics *and* the trace
//! digest — a stable hash folded over every delivered-message event in
//! order, so it catches reorderings that happen to leave the aggregate
//! statistics unchanged.

use regnet::prelude::*;

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
        seed,
        trace: TraceOptions::digest_only(),
    }
}

fn run_once(topo: Topology, scheme: RoutingScheme, seed: u64) -> (RunStats, u64, u64) {
    let cfg = SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        topo,
        scheme,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        cfg,
    )
    .unwrap();
    let (stats, trace) = exp.run_traced(0.01, &opts(seed));
    let trace = trace.expect("digest observer was enabled");
    (
        stats,
        trace.digest.expect("digest recorded"),
        trace.digest_events,
    )
}

fn assert_deterministic(build: fn() -> Topology, scheme: RoutingScheme) {
    let (s1, d1, n1) = run_once(build(), scheme, 42);
    let (s2, d2, n2) = run_once(build(), scheme, 42);
    assert_eq!(
        s1,
        s2,
        "RunStats diverged across identical runs ({} {:?})",
        build().name(),
        scheme
    );
    assert_eq!(
        (d1, n1),
        (d2, n2),
        "trace digest diverged across identical runs ({} {:?})",
        build().name(),
        scheme
    );
    assert!(n1 > 0, "expected deliveries during the window");
}

fn torus() -> Topology {
    gen::torus_2d(8, 8, 8).unwrap()
}

fn express() -> Topology {
    gen::torus_2d_express(8, 8, 8).unwrap()
}

fn cplant() -> Topology {
    gen::cplant().unwrap()
}

#[test]
fn torus_updown_is_deterministic() {
    assert_deterministic(torus, RoutingScheme::UpDown);
}

#[test]
fn torus_itb_sp_is_deterministic() {
    assert_deterministic(torus, RoutingScheme::ItbSp);
}

#[test]
fn torus_itb_rr_is_deterministic() {
    assert_deterministic(torus, RoutingScheme::ItbRr);
}

#[test]
fn express_updown_is_deterministic() {
    assert_deterministic(express, RoutingScheme::UpDown);
}

#[test]
fn express_itb_sp_is_deterministic() {
    assert_deterministic(express, RoutingScheme::ItbSp);
}

#[test]
fn express_itb_rr_is_deterministic() {
    assert_deterministic(express, RoutingScheme::ItbRr);
}

#[test]
fn cplant_updown_is_deterministic() {
    assert_deterministic(cplant, RoutingScheme::UpDown);
}

#[test]
fn cplant_itb_sp_is_deterministic() {
    assert_deterministic(cplant, RoutingScheme::ItbSp);
}

#[test]
fn cplant_itb_rr_is_deterministic() {
    assert_deterministic(cplant, RoutingScheme::ItbRr);
}

/// The digest must actually depend on the traffic: different seeds produce
/// different delivery streams, so a digest collision here would mean the
/// observer is hashing nothing.
#[test]
fn different_seeds_give_different_digests() {
    let (_, d1, _) = run_once(torus(), RoutingScheme::ItbRr, 1);
    let (_, d2, _) = run_once(torus(), RoutingScheme::ItbRr, 2);
    assert_ne!(d1, d2);
}
