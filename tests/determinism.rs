//! Determinism regression suite: a run is a pure function of
//! (topology, routing scheme, pattern, config, seed, fault plan).
//! Re-running with the same seed must reproduce the measurement statistics
//! *and* the trace digest — a stable hash folded over every
//! delivered-message event in order, so it catches reorderings that happen
//! to leave the aggregate statistics unchanged. With a fault plan the
//! ReliabilityStats must reproduce too.

use regnet::prelude::*;

/// Cycle-loop scheduler under test. CI runs the whole suite once per
/// scheduler by setting `REGNET_SCHEDULER=scan|active-set|event|parallel:N`;
/// unset means the default ([`Scheduler::ActiveSet`]).
fn scheduler() -> Scheduler {
    match std::env::var("REGNET_SCHEDULER") {
        Ok(v) => {
            Scheduler::parse(&v).unwrap_or_else(|| panic!("unknown REGNET_SCHEDULER value {v:?}"))
        }
        Err(_) => Scheduler::default(),
    }
}

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        warmup_cycles: 2_000,
        measure_cycles: 10_000,
        seed,
        trace: TraceOptions::digest_only(),
        scheduler: scheduler(),
        ..RunOptions::default()
    }
}

fn run_once(topo: Topology, scheme: RoutingScheme, seed: u64) -> (RunStats, u64, u64) {
    let cfg = SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        topo,
        scheme,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        cfg,
    )
    .unwrap();
    let (stats, trace) = exp.run_traced(0.01, &opts(seed));
    let trace = trace.expect("digest observer was enabled");
    (
        stats,
        trace.digest.expect("digest recorded"),
        trace.digest_events,
    )
}

fn assert_deterministic(build: fn() -> Topology, scheme: RoutingScheme) {
    let (s1, d1, n1) = run_once(build(), scheme, 42);
    let (s2, d2, n2) = run_once(build(), scheme, 42);
    assert_eq!(
        s1,
        s2,
        "RunStats diverged across identical runs ({} {:?})",
        build().name(),
        scheme
    );
    assert_eq!(
        (d1, n1),
        (d2, n2),
        "trace digest diverged across identical runs ({} {:?})",
        build().name(),
        scheme
    );
    assert!(n1 > 0, "expected deliveries during the window");
}

fn torus() -> Topology {
    gen::torus_2d(8, 8, 8).unwrap()
}

fn express() -> Topology {
    gen::torus_2d_express(8, 8, 8).unwrap()
}

fn cplant() -> Topology {
    gen::cplant().unwrap()
}

#[test]
fn torus_updown_is_deterministic() {
    assert_deterministic(torus, RoutingScheme::UpDown);
}

#[test]
fn torus_itb_sp_is_deterministic() {
    assert_deterministic(torus, RoutingScheme::ItbSp);
}

#[test]
fn torus_itb_rr_is_deterministic() {
    assert_deterministic(torus, RoutingScheme::ItbRr);
}

#[test]
fn express_updown_is_deterministic() {
    assert_deterministic(express, RoutingScheme::UpDown);
}

#[test]
fn express_itb_sp_is_deterministic() {
    assert_deterministic(express, RoutingScheme::ItbSp);
}

#[test]
fn express_itb_rr_is_deterministic() {
    assert_deterministic(express, RoutingScheme::ItbRr);
}

#[test]
fn cplant_updown_is_deterministic() {
    assert_deterministic(cplant, RoutingScheme::UpDown);
}

#[test]
fn cplant_itb_sp_is_deterministic() {
    assert_deterministic(cplant, RoutingScheme::ItbSp);
}

#[test]
fn cplant_itb_rr_is_deterministic() {
    assert_deterministic(cplant, RoutingScheme::ItbRr);
}

/// The digest must actually depend on the traffic: different seeds produce
/// different delivery streams, so a digest collision here would mean the
/// observer is hashing nothing.
#[test]
fn different_seeds_give_different_digests() {
    let (_, d1, _) = run_once(torus(), RoutingScheme::ItbRr, 1);
    let (_, d2, _) = run_once(torus(), RoutingScheme::ItbRr, 2);
    assert_ne!(d1, d2);
}

// ---- The observability layer must reproduce too. ----

/// Counter snapshots are pure event counts, so two same-seed runs must
/// produce identical snapshots — and the Chrome trace export, a pure
/// function of the journal, must be byte-identical.
#[test]
fn counters_and_event_journal_are_deterministic() {
    let run = || {
        let exp = Experiment::new(
            gen::torus_2d(4, 4, 4).unwrap(),
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            SimConfig {
                payload_flits: 64,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let obs = exp.run_observed(
            0.01,
            &RunOptions {
                counters: true,
                events: Some(EventOptions::default()),
                ..opts(42)
            },
        );
        let snap = obs.stats.counters.clone().expect("counters enabled");
        let trace = obs.journal.expect("journal enabled").to_chrome().to_json();
        (obs.stats, snap, trace)
    };
    let (s1, c1, t1) = run();
    let (s2, c2, t2) = run();
    assert_eq!(s1, s2, "RunStats diverged with observers enabled");
    assert_eq!(c1, c2, "counter snapshots diverged across identical runs");
    assert_eq!(t1, t2, "Chrome trace export diverged across identical runs");
    assert!(
        c1.total_events() > 0,
        "the run must count something: {c1:?}"
    );
    assert!(
        c1.messages_delivered > 0 && c1.flits_forwarded > c1.messages_delivered,
        "counters must reflect real traffic: {c1:?}"
    );
    assert_eq!(
        c1.messages_delivered, s1.delivered,
        "counter and measurement views of deliveries must agree"
    );
}

/// Enabling the observability layer must not perturb the simulation: the
/// RunStats of an observed run equals the RunStats of a bare run
/// (modulo the snapshot field itself).
#[test]
fn observers_do_not_perturb_the_simulation() {
    let run = |observed: bool| {
        let exp = Experiment::new(
            gen::torus_2d(4, 4, 4).unwrap(),
            RoutingScheme::ItbSp,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            SimConfig {
                payload_flits: 64,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let mut o = opts(42);
        if observed {
            o.counters = true;
            o.events = Some(EventOptions::default());
            o.profile = true;
            // The cycle-domain metrics sampler and occupancy probe ride
            // the same telemetry ticks; they must be invisible too.
            o.trace.metrics_interval = Some(500);
            o.trace.itb_occupancy_interval = Some(750);
            o.trace.packet_lifetimes = true;
        }
        let mut stats = exp.run_stats(0.01, &o);
        stats.counters = None;
        stats
    };
    assert_eq!(
        run(false),
        run(true),
        "observers changed simulation behaviour"
    );
}

// ---- Faults are part of the run's identity. ----

fn faulted_plan(topo: &Topology) -> FaultPlan {
    let l = topo
        .links()
        .iter()
        .find(|l| l.is_switch_link())
        .expect("switch link")
        .id;
    let mut plan = FaultPlan::single_link(l, 4_000);
    plan.repair_link(9_000, l);
    plan
}

fn run_faulted(
    topo: Topology,
    scheme: RoutingScheme,
    seed: u64,
) -> (RunStats, ReliabilityStats, u64, u64) {
    let plan = faulted_plan(&topo);
    let cfg = SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        topo,
        scheme,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        cfg,
    )
    .unwrap();
    let run_opts = RunOptions {
        faults: Some(FaultOptions::with_plan(plan)),
        ..opts(seed)
    };
    let (stats, rel, trace) = exp.run_reliability(0.01, &run_opts);
    let trace = trace.expect("digest observer was enabled");
    (
        stats,
        rel,
        trace.digest.expect("digest recorded"),
        trace.digest_events,
    )
}

fn assert_faulted_deterministic(build: fn() -> Topology, scheme: RoutingScheme) {
    let (s1, r1, d1, n1) = run_faulted(build(), scheme, 42);
    let (s2, r2, d2, n2) = run_faulted(build(), scheme, 42);
    assert_eq!(s1, s2, "RunStats diverged under faults ({scheme:?})");
    assert_eq!(
        r1, r2,
        "ReliabilityStats diverged under faults ({scheme:?})"
    );
    assert_eq!(
        (d1, n1),
        (d2, n2),
        "trace digest diverged under faults ({scheme:?})"
    );
    assert!(
        r1.link_failures == 1 && r1.repairs == 1,
        "the plan must have fired: {r1:?}"
    );
    assert!(n1 > 0, "expected deliveries during the window");
}

#[test]
fn faulted_torus_updown_is_deterministic() {
    assert_faulted_deterministic(torus, RoutingScheme::UpDown);
}

#[test]
fn faulted_torus_itb_sp_is_deterministic() {
    assert_faulted_deterministic(torus, RoutingScheme::ItbSp);
}

#[test]
fn faulted_torus_itb_rr_is_deterministic() {
    assert_faulted_deterministic(torus, RoutingScheme::ItbRr);
}

// ---- The campaign work queue must not be a new source of nondeterminism. ----

/// A campaign fanned across 4 workers produces exactly the per-cell
/// results (RunStats-derived fields *and* trace digests) of the same
/// campaign run single-threaded: the work queue only changes completion
/// order, never results. The `campaign` binary maps `REGNET_THREADS` to
/// this worker count (via `threads_from`, covered below), so this is the
/// in-process equivalent of running the binary under `REGNET_THREADS=1`
/// vs `=4`.
#[test]
fn campaign_cells_are_thread_count_invariant() {
    use regnet_campaign::{run_plan, CampaignSpec, ResultStore, RunnerOptions};

    let spec = CampaignSpec::from_json_str(
        r#"{
            "name": "determinism",
            "defaults": {"warmup_cycles": 2000, "measure_cycles": 10000,
                         "payload_flits": 64, "seed": 42},
            "sweeps": [
                {"group": "d", "topos": ["torus:4x4:2", "express:4x4:2"],
                 "schemes": ["UP/DOWN", "ITB-RR"], "patterns": ["uniform"],
                 "loads": [0.004, 0.01]}
            ]
        }"#,
    )
    .unwrap();
    let plan = spec.expand().unwrap();
    let run_with = |threads: usize, tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("regnet-det-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let opts = RunnerOptions {
            threads,
            ..Default::default()
        };
        run_plan(&plan, &store, &opts, |_| {}).unwrap();
        let all = store.load_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        all
    };
    let serial = run_with(1, "t1");
    let pooled = run_with(4, "t4");
    assert_eq!(serial.len(), plan.len());
    assert_eq!(serial.len(), pooled.len());
    for (hash, a) in &serial {
        let b = &pooled[hash];
        assert!(
            a.same_results(b),
            "cell {hash} diverged across worker counts"
        );
        assert!(
            a.digest.is_some() && a.digest == b.digest,
            "cell {hash} digest diverged across worker counts"
        );
    }
}

/// `REGNET_THREADS` maps to the worker count the campaign runner gets.
#[test]
fn regnet_threads_override_parses() {
    use regnet_netsim::threads::threads_from;
    assert_eq!(threads_from(Some("1")), 1);
    assert_eq!(threads_from(Some("4")), 4);
}

/// An MTBF-drawn plan is deterministic end to end as well: plan generation
/// and plan execution both reproduce.
#[test]
fn faulted_mtbf_plan_is_deterministic() {
    let run = || {
        let topo = cplant();
        let links: Vec<LinkId> = topo
            .links()
            .iter()
            .filter(|l| l.is_switch_link())
            .map(|l| l.id)
            .take(8)
            .collect();
        let plan = FaultPlan::mtbf_links(&links, 12_000, 20_000.0, 4_000.0, 7);
        // A short reconfiguration outage keeps traffic flowing between the
        // densely-packed MTBF faults, so the digest covers real deliveries.
        let cfg = SimConfig {
            payload_flits: 64,
            reconfig_latency_cycles: 1_000,
            ..SimConfig::default()
        };
        let exp = Experiment::new(
            topo,
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg,
        )
        .unwrap();
        let run_opts = RunOptions {
            faults: Some(FaultOptions::with_plan(plan)),
            ..opts(11)
        };
        exp.run_reliability(0.01, &run_opts)
    };
    let (s1, r1, t1) = run();
    let (s2, r2, t2) = run();
    assert_eq!(s1, s2);
    assert_eq!(r1, r2);
    assert!(r1.link_failures > 0, "the MTBF plan must fire: {r1:?}");
    let (t1, t2) = (t1.unwrap(), t2.unwrap());
    assert!(
        t1.digest_events > 0,
        "expected deliveries during the window"
    );
    assert_eq!(
        (t1.digest, t1.digest_events),
        (t2.digest, t2.digest_events),
        "digest diverged under an MTBF plan"
    );
}
